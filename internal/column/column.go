// Package column provides the in-memory columnar representation shared by
// the query engine, the OCS embedded engine and the storage formats. A Page
// is a batch of rows stored column-wise (Presto calls these "Pages", Arrow
// calls them "record batches"); all operators in internal/exec are
// vectorized over Pages.
package column

import (
	"fmt"

	"prestocs/internal/types"
)

// Vector is one column of a Page: a typed value buffer plus a validity
// slice. Only the buffer matching Kind is populated. Nulls is nil when the
// vector contains no NULLs.
type Vector struct {
	Kind  types.Kind
	Nulls []bool // len == Len() when present; true marks NULL

	Ints    []int64   // Int64, Date
	Floats  []float64 // Float64
	Strings []string  // String
	Bools   []bool    // Bool
}

// NewVector allocates an empty vector of the given kind.
func NewVector(k types.Kind) *Vector { return &Vector{Kind: k} }

// Len returns the number of rows in the vector.
func (v *Vector) Len() int {
	switch v.Kind {
	case types.Int64, types.Date:
		return len(v.Ints)
	case types.Float64:
		return len(v.Floats)
	case types.String:
		return len(v.Strings)
	case types.Bool:
		return len(v.Bools)
	default:
		return 0
	}
}

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool { return v.Nulls != nil && v.Nulls[i] }

// HasNulls reports whether any row is NULL.
func (v *Vector) HasNulls() bool {
	for _, n := range v.Nulls {
		if n {
			return true
		}
	}
	return false
}

// Value extracts row i as a types.Value.
func (v *Vector) Value(i int) types.Value {
	if v.IsNull(i) {
		return types.NullValue(v.Kind)
	}
	switch v.Kind {
	case types.Int64:
		return types.IntValue(v.Ints[i])
	case types.Date:
		return types.DateValue(v.Ints[i])
	case types.Float64:
		return types.FloatValue(v.Floats[i])
	case types.String:
		return types.StringValue(v.Strings[i])
	case types.Bool:
		return types.BoolValue(v.Bools[i])
	default:
		panic("column: Value on unknown kind")
	}
}

// Append adds one value; it must match the vector's kind (or be NULL).
func (v *Vector) Append(val types.Value) {
	if val.Null {
		v.appendNull()
		return
	}
	if val.Kind != v.Kind &&
		!(v.Kind == types.Date && val.Kind == types.Int64) &&
		!(v.Kind == types.Int64 && val.Kind == types.Date) {
		panic(fmt.Sprintf("column: append %s to %s vector", val.Kind, v.Kind))
	}
	v.extendNulls(false)
	switch v.Kind {
	case types.Int64, types.Date:
		v.Ints = append(v.Ints, val.I)
	case types.Float64:
		v.Floats = append(v.Floats, val.F)
	case types.String:
		v.Strings = append(v.Strings, val.S)
	case types.Bool:
		v.Bools = append(v.Bools, val.B)
	}
}

func (v *Vector) appendNull() {
	if v.Nulls == nil {
		v.Nulls = make([]bool, v.Len())
	}
	v.Nulls = append(v.Nulls, true)
	switch v.Kind {
	case types.Int64, types.Date:
		v.Ints = append(v.Ints, 0)
	case types.Float64:
		v.Floats = append(v.Floats, 0)
	case types.String:
		v.Strings = append(v.Strings, "")
	case types.Bool:
		v.Bools = append(v.Bools, false)
	}
}

func (v *Vector) extendNulls(isNull bool) {
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, isNull)
	}
}

// AppendVector appends all rows of src (same kind) to v.
func (v *Vector) AppendVector(src *Vector) {
	if src.Kind != v.Kind {
		panic(fmt.Sprintf("column: append %s vector to %s vector", src.Kind, v.Kind))
	}
	n := src.Len()
	if src.Nulls != nil || v.Nulls != nil {
		if v.Nulls == nil {
			v.Nulls = make([]bool, v.Len())
		}
		if src.Nulls != nil {
			v.Nulls = append(v.Nulls, src.Nulls...)
		} else {
			v.Nulls = append(v.Nulls, make([]bool, n)...)
		}
	}
	switch v.Kind {
	case types.Int64, types.Date:
		v.Ints = append(v.Ints, src.Ints...)
	case types.Float64:
		v.Floats = append(v.Floats, src.Floats...)
	case types.String:
		v.Strings = append(v.Strings, src.Strings...)
	case types.Bool:
		v.Bools = append(v.Bools, src.Bools...)
	}
}

// Filter returns a vector containing the rows where keep[i] is true. When
// every row is kept the input vector is returned unchanged (vectors are
// immutable by convention, so sharing is safe); otherwise the output is
// preallocated from the keep count and copied with typed loops.
func (v *Vector) Filter(keep []bool) *Vector {
	n := CountKeep(keep)
	if n == len(keep) && n == v.Len() {
		return v
	}
	return v.Gather(KeepToSel(keep, nil))
}

// Gather returns a new vector with rows picked by index (may repeat). The
// output is preallocated to len(indices) and copied with typed loops —
// no per-row boxing through types.Value.
func (v *Vector) Gather(indices []int) *Vector {
	n := len(indices)
	out := NewVector(v.Kind)
	if v.Nulls != nil {
		out.Nulls = make([]bool, n)
		for o, i := range indices {
			out.Nulls[o] = v.Nulls[i]
		}
	}
	switch v.Kind {
	case types.Int64, types.Date:
		out.Ints = make([]int64, n)
		for o, i := range indices {
			out.Ints[o] = v.Ints[i]
		}
	case types.Float64:
		out.Floats = make([]float64, n)
		for o, i := range indices {
			out.Floats[o] = v.Floats[i]
		}
	case types.String:
		out.Strings = make([]string, n)
		for o, i := range indices {
			out.Strings[o] = v.Strings[i]
		}
	case types.Bool:
		out.Bools = make([]bool, n)
		for o, i := range indices {
			out.Bools[o] = v.Bools[i]
		}
	}
	return out
}

// Slice returns rows [from, to) as a new vector sharing no storage.
func (v *Vector) Slice(from, to int) *Vector {
	out := NewVector(v.Kind)
	if v.Nulls != nil {
		out.Nulls = append(make([]bool, 0, to-from), v.Nulls[from:to]...)
	}
	switch v.Kind {
	case types.Int64, types.Date:
		out.Ints = append(make([]int64, 0, to-from), v.Ints[from:to]...)
	case types.Float64:
		out.Floats = append(make([]float64, 0, to-from), v.Floats[from:to]...)
	case types.String:
		out.Strings = append(make([]string, 0, to-from), v.Strings[from:to]...)
	case types.Bool:
		out.Bools = append(make([]bool, 0, to-from), v.Bools[from:to]...)
	}
	return out
}

// ByteSize estimates the in-memory footprint of the vector's data, used
// for data-movement accounting.
func (v *Vector) ByteSize() int64 {
	var n int64
	switch v.Kind {
	case types.Int64, types.Date:
		n = int64(len(v.Ints)) * 8
	case types.Float64:
		n = int64(len(v.Floats)) * 8
	case types.String:
		for _, s := range v.Strings {
			n += int64(len(s)) + 4
		}
	case types.Bool:
		n = int64(len(v.Bools))
	}
	if v.Nulls != nil {
		n += int64(len(v.Nulls))
	}
	return n
}

// Page is a batch of rows in columnar layout, with a schema describing the
// vectors.
type Page struct {
	Schema  *types.Schema
	Vectors []*Vector
}

// NewPage allocates an empty page matching the schema.
func NewPage(schema *types.Schema) *Page {
	vecs := make([]*Vector, schema.Len())
	for i, c := range schema.Columns {
		vecs[i] = NewVector(c.Type)
	}
	return &Page{Schema: schema, Vectors: vecs}
}

// NumRows returns the row count (0 for a page with no columns).
func (p *Page) NumRows() int {
	if len(p.Vectors) == 0 {
		return 0
	}
	return p.Vectors[0].Len()
}

// NumCols returns the column count.
func (p *Page) NumCols() int { return len(p.Vectors) }

// AppendRow appends one row of values (one per column).
func (p *Page) AppendRow(vals ...types.Value) {
	if len(vals) != len(p.Vectors) {
		panic(fmt.Sprintf("column: AppendRow with %d values on %d columns", len(vals), len(p.Vectors)))
	}
	for i, v := range vals {
		p.Vectors[i].Append(v)
	}
}

// Row extracts row i as a value slice.
func (p *Page) Row(i int) []types.Value {
	row := make([]types.Value, len(p.Vectors))
	for c, v := range p.Vectors {
		row[c] = v.Value(i)
	}
	return row
}

// AppendPage appends all rows of src (same schema arity/kinds).
func (p *Page) AppendPage(src *Page) {
	if len(src.Vectors) != len(p.Vectors) {
		panic("column: AppendPage with mismatched column count")
	}
	for i := range p.Vectors {
		p.Vectors[i].AppendVector(src.Vectors[i])
	}
}

// Filter returns a page keeping the rows where keep[i] is true. When every
// row is kept the input page is returned unchanged; otherwise output
// vectors are preallocated from the keep count.
func (p *Page) Filter(keep []bool) *Page {
	if CountKeep(keep) == p.NumRows() {
		return p
	}
	return p.Gather(KeepToSel(keep, nil))
}

// FilterSel returns a page keeping only the rows named by the selection
// vector (sorted, non-repeating). When the selection covers every row the
// input page is returned unchanged.
func (p *Page) FilterSel(sel []int) *Page {
	if len(sel) == p.NumRows() {
		return p
	}
	return p.Gather(sel)
}

// Gather returns a new page with rows picked by index.
func (p *Page) Gather(indices []int) *Page {
	out := &Page{Schema: p.Schema, Vectors: make([]*Vector, len(p.Vectors))}
	for i, v := range p.Vectors {
		out.Vectors[i] = v.Gather(indices)
	}
	return out
}

// Slice returns rows [from, to) as a new page.
func (p *Page) Slice(from, to int) *Page {
	out := &Page{Schema: p.Schema, Vectors: make([]*Vector, len(p.Vectors))}
	for i, v := range p.Vectors {
		out.Vectors[i] = v.Slice(from, to)
	}
	return out
}

// Project returns a page containing only the given column indices, with a
// projected schema.
func (p *Page) Project(indices []int) *Page {
	out := &Page{Schema: p.Schema.Project(indices), Vectors: make([]*Vector, len(indices))}
	for i, idx := range indices {
		out.Vectors[i] = p.Vectors[idx]
	}
	return out
}

// ByteSize estimates the page's data footprint.
func (p *Page) ByteSize() int64 {
	var n int64
	for _, v := range p.Vectors {
		n += v.ByteSize()
	}
	return n
}

// String renders a compact debug form: schema plus row count.
func (p *Page) String() string {
	return fmt.Sprintf("Page%s[%d rows]", p.Schema, p.NumRows())
}
