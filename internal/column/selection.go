package column

import "prestocs/internal/types"

// Selection vectors are sorted, non-repeating row-index slices ([]int)
// identifying the surviving rows of a page. The vectorized expression
// kernels (internal/expr) and the filter operator (internal/exec) exchange
// selections instead of materialized pages so that downstream work — the
// right side of an AND, a projection expression, a gather — only touches
// rows that are still alive. A nil selection conventionally means "all
// rows"; helpers here treat it as such where documented.

// CountKeep returns the number of true entries in a keep mask.
func CountKeep(keep []bool) int {
	n := 0
	for _, k := range keep {
		if k {
			n++
		}
	}
	return n
}

// KeepToSel converts a keep mask into a selection vector. When base is
// non-nil, keep is interpreted relative to base: keep[i] refers to row
// base[i], so the result stays in page-row coordinates.
func KeepToSel(keep []bool, base []int) []int {
	sel := make([]int, 0, CountKeep(keep))
	if base != nil {
		for i, k := range keep {
			if k {
				sel = append(sel, base[i])
			}
		}
		return sel
	}
	for i, k := range keep {
		if k {
			sel = append(sel, i)
		}
	}
	return sel
}

// SelToMask converts a selection vector into an n-row keep mask.
func SelToMask(sel []int, n int) []bool {
	keep := make([]bool, n)
	for _, i := range sel {
		keep[i] = true
	}
	return keep
}

// MergeSel merges two sorted selection vectors into one sorted vector.
// The inputs must be disjoint (as produced by OR short-circuiting, where
// the right side is only evaluated over rows the left side rejected).
func MergeSel(a, b []int) []int {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// SubtractSel returns the rows of `from` that are not in `sel`. Both
// inputs are sorted; `sel` must be a subsequence of `from`. This is the
// complement used by OR short-circuiting: evaluate the right side only
// over rows the left side did not already keep.
func SubtractSel(from, sel []int) []int {
	out := make([]int, 0, len(from)-len(sel))
	j := 0
	for _, r := range from {
		if j < len(sel) && sel[j] == r {
			j++
			continue
		}
		out = append(out, r)
	}
	return out
}

// Reserve grows the vector's backing buffers to hold at least n more rows
// without reallocation. It is a batch-append helper for producers that
// know their output size (readers, gathers, aggregate output builders).
func (v *Vector) Reserve(n int) {
	if v.Nulls != nil {
		v.Nulls = growCap(v.Nulls, n)
	}
	switch v.Kind {
	case types.Int64, types.Date:
		v.Ints = growCap(v.Ints, n)
	case types.Float64:
		v.Floats = growCap(v.Floats, n)
	case types.String:
		v.Strings = growCap(v.Strings, n)
	case types.Bool:
		v.Bools = growCap(v.Bools, n)
	}
}

// Reserve preallocates every vector of the page for n more rows.
func (p *Page) Reserve(n int) {
	for _, v := range p.Vectors {
		v.Reserve(n)
	}
}

func growCap[T any](s []T, n int) []T {
	if cap(s)-len(s) >= n {
		return s
	}
	out := make([]T, len(s), len(s)+n)
	copy(out, s)
	return out
}
