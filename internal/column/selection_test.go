package column

import (
	"math/rand"
	"reflect"
	"testing"

	"prestocs/internal/types"
)

func selTestPage(n int) *Page {
	s := types.NewSchema(
		types.Column{Name: "i", Type: types.Int64},
		types.Column{Name: "s", Type: types.String},
	)
	p := NewPage(s)
	for r := 0; r < n; r++ {
		iv := types.IntValue(int64(r))
		if r%5 == 0 {
			iv = types.NullValue(types.Int64)
		}
		p.AppendRow(iv, types.StringValue(string(rune('a'+r%26))))
	}
	return p
}

func TestKeepSelRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		n := 1 + r.Intn(100)
		keep := make([]bool, n)
		for i := range keep {
			keep[i] = r.Intn(2) == 0
		}
		sel := KeepToSel(keep, nil)
		if len(sel) != CountKeep(keep) {
			t.Fatalf("len(sel) = %d, CountKeep = %d", len(sel), CountKeep(keep))
		}
		back := SelToMask(sel, n)
		if !reflect.DeepEqual(back, keep) {
			t.Fatalf("round trip mismatch: %v -> %v -> %v", keep, sel, back)
		}
	}
}

func TestKeepToSelWithBase(t *testing.T) {
	base := []int{2, 5, 9}
	keep := []bool{true, false, true}
	if got := KeepToSel(keep, base); !reflect.DeepEqual(got, []int{2, 9}) {
		t.Errorf("KeepToSel with base = %v", got)
	}
}

func TestMergeAndSubtractSel(t *testing.T) {
	from := []int{0, 1, 3, 4, 7, 9}
	left := []int{1, 4, 9}
	rest := SubtractSel(from, left)
	if !reflect.DeepEqual(rest, []int{0, 3, 7}) {
		t.Fatalf("SubtractSel = %v", rest)
	}
	// Merging a disjoint split restores the original.
	if got := MergeSel(left, rest); !reflect.DeepEqual(got, from) {
		t.Fatalf("MergeSel = %v, want %v", got, from)
	}
	if got := MergeSel(nil, rest); !reflect.DeepEqual(got, rest) {
		t.Errorf("MergeSel(nil, x) = %v", got)
	}
	if got := SubtractSel(from, nil); !reflect.DeepEqual(got, from) {
		t.Errorf("SubtractSel(x, nil) = %v", got)
	}
}

// TestFilterAllKeptReturnsSamePage: the fast path must hand the input back
// untouched (same *Page, same *Vector buffers) when nothing is dropped.
func TestFilterAllKeptReturnsSamePage(t *testing.T) {
	p := selTestPage(10)
	keep := make([]bool, 10)
	for i := range keep {
		keep[i] = true
	}
	if got := p.Filter(keep); got != p {
		t.Error("Page.Filter with all-true mask must return the page itself")
	}
	if got := p.Vectors[0].Filter(keep); got != p.Vectors[0] {
		t.Error("Vector.Filter with all-true mask must return the vector itself")
	}
	// FilterSel: a full identity selection is also zero-copy.
	sel := make([]int, 10)
	for i := range sel {
		sel[i] = i
	}
	if got := p.FilterSel(sel); got != p {
		t.Error("Page.FilterSel with a full selection must return the page itself")
	}
}

func TestFilterSelMatchesFilter(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 30; iter++ {
		n := 1 + r.Intn(60)
		p := selTestPage(n)
		keep := make([]bool, n)
		for i := range keep {
			keep[i] = r.Intn(2) == 0
		}
		a := p.Filter(keep)
		b := p.FilterSel(KeepToSel(keep, nil))
		if a.NumRows() != b.NumRows() {
			t.Fatalf("Filter %d rows, FilterSel %d rows", a.NumRows(), b.NumRows())
		}
		for i := 0; i < a.NumRows(); i++ {
			for c := range a.Vectors {
				av, bv := a.Vectors[c].Value(i), b.Vectors[c].Value(i)
				if av.Null != bv.Null || (!av.Null && types.Compare(av, bv) != 0) {
					t.Fatalf("row %d col %d: %s vs %s", i, c, av, bv)
				}
			}
		}
	}
}

func TestGatherPreallocates(t *testing.T) {
	p := selTestPage(100)
	sel := []int{3, 0, 99, 50, 50} // gather may repeat and reorder
	g := p.Gather(sel)
	if g.NumRows() != len(sel) {
		t.Fatalf("gather rows = %d", g.NumRows())
	}
	for c := range g.Vectors {
		v := g.Vectors[c]
		switch v.Kind {
		case types.Int64:
			if cap(v.Ints) != len(sel) {
				t.Errorf("ints cap = %d, want exactly %d (preallocated)", cap(v.Ints), len(sel))
			}
		case types.String:
			if cap(v.Strings) != len(sel) {
				t.Errorf("strings cap = %d, want exactly %d (preallocated)", cap(v.Strings), len(sel))
			}
		}
	}
	if g.Vectors[0].Value(2).I != 99 || !g.Vectors[0].Value(1).Null {
		t.Errorf("gather values wrong: %v", g.Vectors[0])
	}
}

func TestReserveAvoidsRegrowth(t *testing.T) {
	p := NewPage(types.NewSchema(types.Column{Name: "i", Type: types.Int64}))
	p.Reserve(1000)
	base := &p.Vectors[0].Ints
	p.Vectors[0].Reserve(500) // already covered: must not shrink or move
	if cap(*base) < 1000 {
		t.Fatalf("cap = %d after Reserve(1000)", cap(*base))
	}
	before := cap(p.Vectors[0].Ints)
	for i := 0; i < 1000; i++ {
		p.AppendRow(types.IntValue(int64(i)))
	}
	if cap(p.Vectors[0].Ints) != before {
		t.Errorf("append regrew a reserved vector: cap %d -> %d", before, cap(p.Vectors[0].Ints))
	}
	// Nulls allocated later must still track length correctly.
	p.AppendRow(types.NullValue(types.Int64))
	if p.NumRows() != 1001 || !p.Vectors[0].IsNull(1000) {
		t.Errorf("rows = %d, null = %v", p.NumRows(), p.Vectors[0].IsNull(1000))
	}
}
