package column

import (
	"testing"
	"testing/quick"

	"prestocs/internal/types"
)

func intVec(vals ...int64) *Vector {
	v := NewVector(types.Int64)
	for _, x := range vals {
		v.Append(types.IntValue(x))
	}
	return v
}

func TestVectorAppendAndValue(t *testing.T) {
	v := intVec(1, 2, 3)
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	if got := v.Value(1); got.I != 2 {
		t.Errorf("Value(1) = %v", got)
	}
	v.Append(types.NullValue(types.Int64))
	if v.Len() != 4 || !v.IsNull(3) || v.IsNull(2) {
		t.Error("null append wrong")
	}
	if !v.HasNulls() {
		t.Error("HasNulls = false")
	}
	if !intVec(1).Value(0).Kind.Numeric() {
		t.Error("kind lost")
	}
}

func TestVectorAllKinds(t *testing.T) {
	vals := []types.Value{
		types.IntValue(7),
		types.FloatValue(2.5),
		types.StringValue("x"),
		types.BoolValue(true),
		types.DateValue(100),
	}
	for _, val := range vals {
		v := NewVector(val.Kind)
		v.Append(val)
		v.Append(types.NullValue(val.Kind))
		if !types.Equal(v.Value(0), val) {
			t.Errorf("kind %v: got %v want %v", val.Kind, v.Value(0), val)
		}
		if !v.Value(1).Null {
			t.Errorf("kind %v: null lost", val.Kind)
		}
	}
}

func TestVectorAppendKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("append of wrong kind must panic")
		}
	}()
	NewVector(types.Int64).Append(types.StringValue("x"))
}

func TestVectorAppendVector(t *testing.T) {
	a := intVec(1, 2)
	b := intVec(3)
	b.Append(types.NullValue(types.Int64))
	a.AppendVector(b)
	if a.Len() != 4 || a.Value(2).I != 3 || !a.IsNull(3) {
		t.Errorf("AppendVector wrong: %v nulls=%v", a.Ints, a.Nulls)
	}
	// Appending a null-free vector onto a vector with nulls must extend
	// the validity slice.
	c := intVec(9)
	a.AppendVector(c)
	if a.IsNull(4) || len(a.Nulls) != 5 {
		t.Error("validity slice not extended")
	}
}

func TestVectorFilterGatherSlice(t *testing.T) {
	v := intVec(10, 20, 30, 40)
	f := v.Filter([]bool{true, false, true, false})
	if f.Len() != 2 || f.Ints[0] != 10 || f.Ints[1] != 30 {
		t.Errorf("Filter = %v", f.Ints)
	}
	g := v.Gather([]int{3, 3, 0})
	if g.Len() != 3 || g.Ints[0] != 40 || g.Ints[2] != 10 {
		t.Errorf("Gather = %v", g.Ints)
	}
	s := v.Slice(1, 3)
	if s.Len() != 2 || s.Ints[0] != 20 {
		t.Errorf("Slice = %v", s.Ints)
	}
}

func TestVectorByteSize(t *testing.T) {
	if got := intVec(1, 2, 3).ByteSize(); got != 24 {
		t.Errorf("int ByteSize = %d", got)
	}
	sv := NewVector(types.String)
	sv.Append(types.StringValue("abcd"))
	if got := sv.ByteSize(); got != 8 {
		t.Errorf("string ByteSize = %d", got)
	}
}

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "x", Type: types.Float64},
		types.Column{Name: "name", Type: types.String},
	)
}

func testPage() *Page {
	p := NewPage(testSchema())
	p.AppendRow(types.IntValue(1), types.FloatValue(1.5), types.StringValue("a"))
	p.AppendRow(types.IntValue(2), types.FloatValue(2.5), types.StringValue("b"))
	p.AppendRow(types.IntValue(3), types.FloatValue(3.5), types.StringValue("c"))
	return p
}

func TestPageBasics(t *testing.T) {
	p := testPage()
	if p.NumRows() != 3 || p.NumCols() != 3 {
		t.Fatalf("dims = %dx%d", p.NumRows(), p.NumCols())
	}
	row := p.Row(1)
	if row[0].I != 2 || row[1].F != 2.5 || row[2].S != "b" {
		t.Errorf("Row(1) = %v", row)
	}
	if p.String() == "" {
		t.Error("String empty")
	}
	empty := NewPage(types.NewSchema())
	if empty.NumRows() != 0 {
		t.Error("empty page rows != 0")
	}
}

func TestPageAppendRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong arity must panic")
		}
	}()
	testPage().AppendRow(types.IntValue(1))
}

func TestPageFilterGatherSliceProject(t *testing.T) {
	p := testPage()
	f := p.Filter([]bool{false, true, true})
	if f.NumRows() != 2 || f.Row(0)[2].S != "b" {
		t.Errorf("Filter wrong")
	}
	g := p.Gather([]int{2, 0})
	if g.NumRows() != 2 || g.Row(0)[0].I != 3 {
		t.Errorf("Gather wrong")
	}
	s := p.Slice(0, 1)
	if s.NumRows() != 1 || s.Row(0)[0].I != 1 {
		t.Errorf("Slice wrong")
	}
	pr := p.Project([]int{2, 0})
	if pr.NumCols() != 2 || pr.Schema.Columns[0].Name != "name" || pr.Row(1)[1].I != 2 {
		t.Errorf("Project wrong")
	}
}

func TestPageAppendPage(t *testing.T) {
	a, b := testPage(), testPage()
	a.AppendPage(b)
	if a.NumRows() != 6 || a.Row(5)[0].I != 3 {
		t.Errorf("AppendPage wrong: %d rows", a.NumRows())
	}
}

// Property: Filter keeps exactly the marked rows, in order.
func TestQuickFilterPreservesOrder(t *testing.T) {
	f := func(vals []int64, seed uint16) bool {
		v := intVec(vals...)
		keep := make([]bool, len(vals))
		var want []int64
		for i := range keep {
			keep[i] = (uint(seed)>>(uint(i)%16))&1 == 1
			if keep[i] {
				want = append(want, vals[i])
			}
		}
		got := v.Filter(keep)
		if got.Len() != len(want) {
			return false
		}
		for i, w := range want {
			if got.Ints[i] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Slice(0,n) is the identity.
func TestQuickSliceIdentity(t *testing.T) {
	f := func(vals []int64) bool {
		v := intVec(vals...)
		s := v.Slice(0, v.Len())
		if s.Len() != v.Len() {
			return false
		}
		for i := range vals {
			if s.Ints[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
