// Package protowire implements the Protocol Buffers wire format from
// scratch: varints, zigzag, fixed-width fields, length-delimited fields
// and field tags. The substrait package builds its plan serialization on
// top of it, mirroring how real Substrait plans are protobuf messages.
//
// Only the subset needed here is implemented (wire types 0, 1, 2 and 5);
// groups are rejected. Unknown fields can be skipped, so messages are
// forward-compatible the same way real protobuf is.
package protowire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Type is a protobuf wire type.
type Type uint8

const (
	// VarintType is wire type 0 (int32/int64/uint/bool/enum, zigzag).
	VarintType Type = 0
	// Fixed64Type is wire type 1 (fixed64, double).
	Fixed64Type Type = 1
	// BytesType is wire type 2 (length-delimited: bytes, string, messages).
	BytesType Type = 2
	// Fixed32Type is wire type 5 (fixed32, float).
	Fixed32Type Type = 5
)

// ErrTruncated reports input that ends mid-field.
var ErrTruncated = errors.New("protowire: truncated message")

// Encoder appends protobuf-encoded fields to a buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Encoded returns the encoded message.
func (e *Encoder) Encoded() []byte { return e.buf }

// Len returns the current encoded size.
func (e *Encoder) Len() int { return len(e.buf) }

func (e *Encoder) tag(field int, t Type) {
	e.uvarint(uint64(field)<<3 | uint64(t))
}

func (e *Encoder) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	e.buf = append(e.buf, tmp[:n]...)
}

// Uint64 writes field as a varint.
func (e *Encoder) Uint64(field int, v uint64) {
	e.tag(field, VarintType)
	e.uvarint(v)
}

// Int64 writes field as a zigzag-encoded varint (sint64 semantics).
func (e *Encoder) Int64(field int, v int64) {
	e.Uint64(field, zigzag(v))
}

// Bool writes field as varint 0/1. False is still written explicitly —
// this wire dialect has no proto3 default-omission, keeping round-trips
// exact.
func (e *Encoder) Bool(field int, v bool) {
	var u uint64
	if v {
		u = 1
	}
	e.Uint64(field, u)
}

// Double writes field as fixed64 (IEEE-754 bits).
func (e *Encoder) Double(field int, v float64) {
	e.tag(field, Fixed64Type)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	e.buf = append(e.buf, tmp[:]...)
}

// Fixed32 writes field as a 4-byte little-endian value.
func (e *Encoder) Fixed32(field int, v uint32) {
	e.tag(field, Fixed32Type)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	e.buf = append(e.buf, tmp[:]...)
}

// Bytes writes field as a length-delimited byte string.
func (e *Encoder) Bytes(field int, v []byte) {
	e.tag(field, BytesType)
	e.uvarint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// String writes field as a length-delimited string.
func (e *Encoder) String(field int, v string) {
	e.tag(field, BytesType)
	e.uvarint(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// Message writes field as a nested message built by fn.
func (e *Encoder) Message(field int, fn func(*Encoder)) {
	nested := NewEncoder()
	fn(nested)
	e.Bytes(field, nested.Encoded())
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Decoder walks the fields of an encoded message.
type Decoder struct {
	buf []byte
	pos int
}

// NewDecoder wraps an encoded message.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Done reports whether all input has been consumed.
func (d *Decoder) Done() bool { return d.pos >= len(d.buf) }

// Next reads the next field tag. It returns the field number and wire type.
func (d *Decoder) Next() (field int, t Type, err error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	t = Type(u & 0x7)
	field = int(u >> 3)
	if field == 0 {
		return 0, 0, errors.New("protowire: field number 0")
	}
	switch t {
	case VarintType, Fixed64Type, BytesType, Fixed32Type:
		return field, t, nil
	default:
		return 0, 0, fmt.Errorf("protowire: unsupported wire type %d", t)
	}
}

func (d *Decoder) uvarint() (uint64, error) {
	u, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.pos += n
	return u, nil
}

// Uint64 reads a varint payload.
func (d *Decoder) Uint64() (uint64, error) { return d.uvarint() }

// Int64 reads a zigzag varint payload.
func (d *Decoder) Int64() (int64, error) {
	u, err := d.uvarint()
	return unzigzag(u), err
}

// Bool reads a varint payload as a bool.
func (d *Decoder) Bool() (bool, error) {
	u, err := d.uvarint()
	return u != 0, err
}

// Double reads a fixed64 payload as a float64.
func (d *Decoder) Double() (float64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return math.Float64frombits(v), nil
}

// Fixed32 reads a fixed32 payload.
func (d *Decoder) Fixed32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

// Bytes reads a length-delimited payload. The returned slice aliases the
// input buffer.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, ErrTruncated
	}
	out := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// String reads a length-delimited payload as a string.
func (d *Decoder) String() (string, error) {
	b, err := d.Bytes()
	return string(b), err
}

// Message reads a length-delimited payload and returns a sub-decoder.
func (d *Decoder) Message() (*Decoder, error) {
	b, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	return NewDecoder(b), nil
}

// Skip discards the payload of a field with the given wire type, enabling
// forward compatibility with unknown fields.
func (d *Decoder) Skip(t Type) error {
	switch t {
	case VarintType:
		_, err := d.uvarint()
		return err
	case Fixed64Type:
		_, err := d.Double()
		return err
	case Fixed32Type:
		_, err := d.Fixed32()
		return err
	case BytesType:
		_, err := d.Bytes()
		return err
	default:
		return fmt.Errorf("protowire: cannot skip wire type %d", t)
	}
}
