package protowire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Uint64(1, 300)
	e.Int64(2, -12345)
	e.Bool(3, true)
	e.Bool(4, false)
	e.Double(5, 3.14159)
	e.Fixed32(6, 0xdeadbeef)
	e.String(7, "hello")
	e.Bytes(8, []byte{0, 1, 2})

	d := NewDecoder(e.Encoded())
	expect := func(wantField int, wantType Type) {
		t.Helper()
		f, ty, err := d.Next()
		if err != nil || f != wantField || ty != wantType {
			t.Fatalf("Next = %d,%d,%v; want %d,%d", f, ty, err, wantField, wantType)
		}
	}
	expect(1, VarintType)
	if v, _ := d.Uint64(); v != 300 {
		t.Errorf("field1 = %d", v)
	}
	expect(2, VarintType)
	if v, _ := d.Int64(); v != -12345 {
		t.Errorf("field2 = %d", v)
	}
	expect(3, VarintType)
	if v, _ := d.Bool(); !v {
		t.Error("field3 = false")
	}
	expect(4, VarintType)
	if v, _ := d.Bool(); v {
		t.Error("field4 = true")
	}
	expect(5, Fixed64Type)
	if v, _ := d.Double(); v != 3.14159 {
		t.Errorf("field5 = %v", v)
	}
	expect(6, Fixed32Type)
	if v, _ := d.Fixed32(); v != 0xdeadbeef {
		t.Errorf("field6 = %x", v)
	}
	expect(7, BytesType)
	if v, _ := d.String(); v != "hello" {
		t.Errorf("field7 = %q", v)
	}
	expect(8, BytesType)
	if v, _ := d.Bytes(); len(v) != 3 || v[2] != 2 {
		t.Errorf("field8 = %v", v)
	}
	if !d.Done() {
		t.Error("decoder not exhausted")
	}
}

func TestNestedMessage(t *testing.T) {
	e := NewEncoder()
	e.Message(1, func(inner *Encoder) {
		inner.Uint64(1, 7)
		inner.Message(2, func(deep *Encoder) {
			deep.String(1, "deep")
		})
	})
	d := NewDecoder(e.Encoded())
	_, _, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	inner, err := d.Message()
	if err != nil {
		t.Fatal(err)
	}
	f, _, _ := inner.Next()
	if f != 1 {
		t.Fatalf("inner field = %d", f)
	}
	if v, _ := inner.Uint64(); v != 7 {
		t.Errorf("inner value = %d", v)
	}
	inner.Next()
	deep, err := inner.Message()
	if err != nil {
		t.Fatal(err)
	}
	deep.Next()
	if s, _ := deep.String(); s != "deep" {
		t.Errorf("deep = %q", s)
	}
}

func TestSkipUnknownFields(t *testing.T) {
	e := NewEncoder()
	e.Uint64(1, 5)
	e.Double(2, 1.5)
	e.String(3, "skip me")
	e.Fixed32(4, 9)
	e.Uint64(5, 6)

	d := NewDecoder(e.Encoded())
	var got []uint64
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if f == 1 || f == 5 {
			v, _ := d.Uint64()
			got = append(got, v)
			continue
		}
		if err := d.Skip(ty); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Errorf("got %v", got)
	}
}

func TestTruncatedInputs(t *testing.T) {
	e := NewEncoder()
	e.String(1, "hello world")
	buf := e.Encoded()
	for cut := 1; cut < len(buf); cut++ {
		d := NewDecoder(buf[:cut])
		_, ty, err := d.Next()
		if err != nil {
			continue // truncation detected at the tag
		}
		if _, err := d.Bytes(); err == nil {
			t.Errorf("cut=%d: truncated bytes decoded", cut)
		}
		_ = ty
	}
	// Truncated fixed64 / fixed32.
	d := NewDecoder([]byte{0x09, 1, 2, 3}) // field1, fixed64, 3 payload bytes
	d.Next()
	if _, err := d.Double(); err == nil {
		t.Error("truncated double decoded")
	}
	d = NewDecoder([]byte{0x0d, 1}) // field1, fixed32, 1 payload byte
	d.Next()
	if _, err := d.Fixed32(); err == nil {
		t.Error("truncated fixed32 decoded")
	}
}

func TestInvalidWireTypeAndFieldZero(t *testing.T) {
	// Wire type 3 (start group) unsupported.
	d := NewDecoder([]byte{0x0b})
	if _, _, err := d.Next(); err == nil {
		t.Error("group wire type accepted")
	}
	// Field number 0 invalid.
	d = NewDecoder([]byte{0x00})
	if _, _, err := d.Next(); err == nil {
		t.Error("field 0 accepted")
	}
	if err := NewDecoder(nil).Skip(Type(3)); err == nil {
		t.Error("skip of group type accepted")
	}
}

func TestZigzagBoundaries(t *testing.T) {
	for _, v := range []int64{0, -1, 1, math.MinInt64, math.MaxInt64, -64, 63} {
		e := NewEncoder()
		e.Int64(1, v)
		d := NewDecoder(e.Encoded())
		d.Next()
		got, err := d.Int64()
		if err != nil || got != v {
			t.Errorf("zigzag(%d) = %d, %v", v, got, err)
		}
	}
}

// Property: arbitrary (uint64, int64, float64, string) tuples round-trip.
func TestQuickTupleRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, fl float64, s string, b []byte) bool {
		e := NewEncoder()
		e.Uint64(1, u)
		e.Int64(2, i)
		e.Double(3, fl)
		e.String(4, s)
		e.Bytes(5, b)
		d := NewDecoder(e.Encoded())
		d.Next()
		gu, err := d.Uint64()
		if err != nil || gu != u {
			return false
		}
		d.Next()
		gi, err := d.Int64()
		if err != nil || gi != i {
			return false
		}
		d.Next()
		gf, err := d.Double()
		if err != nil || (gf != fl && !(math.IsNaN(gf) && math.IsNaN(fl))) {
			return false
		}
		d.Next()
		gs, err := d.String()
		if err != nil || gs != s {
			return false
		}
		d.Next()
		gb, err := d.Bytes()
		if err != nil || string(gb) != string(b) {
			return false
		}
		return d.Done()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
