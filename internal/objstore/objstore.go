// Package objstore implements the S3/MinIO-like object storage substrate:
// buckets of immutable objects with GET/PUT/LIST/DELETE plus an
// S3 Select-style SelectObjectContent API that evaluates a WHERE predicate
// and column projection against a parquetlite object and streams back
// row-oriented CSV — the filter-only pushdown baseline the paper compares
// against. (Unlike real S3 Select, DOUBLE columns are fully supported;
// the row-oriented result format is kept because its parse cost is part
// of what the paper's OCS/Arrow path improves on.)
//
// The server runs over internal/rpc, so all traffic is metered. Every
// response carries a WorkStats trailer describing the storage-side work
// performed (bytes read from media, bytes after decompression, CPU
// units), which the cost model prices with the storage node's hardware
// profile.
package objstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Store is the in-memory bucket/object map shared by server methods.
// Objects are immutable once put (like S3); Put overwrites atomically.
type Store struct {
	mu      sync.RWMutex
	buckets map[string]map[string][]byte
	// gens tracks a per-object generation, bumped on every Put and
	// Delete. Cache keys embed it (the etag/version of the cache tier),
	// so a re-put object can never hit a stale footer or page entry.
	gens map[string]uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{buckets: make(map[string]map[string][]byte), gens: make(map[string]uint64)}
}

// genKey is the generation-map key for bucket/key.
func genKey(bucket, key string) string { return bucket + "\x00" + key }

// CreateBucket makes a bucket (idempotent).
func (s *Store) CreateBucket(bucket string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[bucket]; !ok {
		s.buckets[bucket] = make(map[string][]byte)
	}
}

// Put stores an object, creating the bucket if needed.
func (s *Store) Put(bucket, key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		b = make(map[string][]byte)
		s.buckets[bucket] = b
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b[key] = cp
	s.gens[genKey(bucket, key)]++
}

// Get fetches an object.
func (s *Store) Get(bucket, key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return nil, fmt.Errorf("objstore: no such bucket %q", bucket)
	}
	data, ok := b[key]
	if !ok {
		return nil, fmt.Errorf("objstore: no such object %q/%q", bucket, key)
	}
	return data, nil
}

// Delete removes an object (no error if absent, like S3).
func (s *Store) Delete(bucket, key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.buckets[bucket]; ok {
		if _, existed := b[key]; existed {
			s.gens[genKey(bucket, key)]++
		}
		delete(b, key)
	}
}

// GetVersioned fetches an object together with its generation, the
// version cache keys embed. The generation changes on every Put, so two
// equal generations imply byte-identical content.
func (s *Store) GetVersioned(bucket, key string) ([]byte, uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return nil, 0, fmt.Errorf("objstore: no such bucket %q", bucket)
	}
	data, ok := b[key]
	if !ok {
		return nil, 0, fmt.Errorf("objstore: no such object %q/%q", bucket, key)
	}
	return data, s.gens[genKey(bucket, key)], nil
}

// List returns the sorted keys in a bucket with the given prefix.
func (s *Store) List(bucket, prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return nil, fmt.Errorf("objstore: no such bucket %q", bucket)
	}
	var keys []string
	for k := range b {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys, nil
}

// Buckets returns the sorted bucket names.
func (s *Store) Buckets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for b := range s.buckets {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Size returns the stored byte size of an object, or -1.
func (s *Store) Size(bucket, key string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if b, ok := s.buckets[bucket]; ok {
		if data, ok := b[key]; ok {
			return int64(len(data))
		}
	}
	return -1
}

// WorkStats describes storage-side work performed for one request. The
// cost model prices it with the storage node's hardware profile.
type WorkStats struct {
	// BytesRead is compressed bytes read from media.
	BytesRead int64
	// BytesDecompressed is bytes produced by codec decode.
	BytesDecompressed int64
	// CPUUnits is abstract compute spent (expression evaluation etc.).
	CPUUnits float64
	// RowsProcessed is rows scanned.
	RowsProcessed int64
}

// Add merges o into s.
func (w *WorkStats) Add(o WorkStats) {
	w.BytesRead += o.BytesRead
	w.BytesDecompressed += o.BytesDecompressed
	w.CPUUnits += o.CPUUnits
	w.RowsProcessed += o.RowsProcessed
}
