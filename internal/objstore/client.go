package objstore

import (
	"context"
	"encoding/csv"
	"fmt"
	"strings"

	"prestocs/internal/column"
	"prestocs/internal/expr"
	"prestocs/internal/protowire"
	"prestocs/internal/rpc"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

// Client talks to an object store server over RPC.
type Client struct {
	rpc *rpc.Client
}

// NewClient wraps an RPC client.
func NewClient(addr string) *Client { return &Client{rpc: rpc.Dial(addr)} }

// Close releases connections.
func (c *Client) Close() error { return c.rpc.Close() }

// Meter exposes the transport meter (data-movement accounting).
func (c *Client) Meter() *rpc.Meter { return &c.rpc.Meter }

// Put uploads an object.
func (c *Client) Put(ctx context.Context, bucket, key string, data []byte) error {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, key)
	e.Bytes(3, data)
	_, err := c.rpc.Call(ctx, MethodPut, e.Encoded())
	return err
}

// Get downloads a whole object, returning the data and storage-side work
// stats.
func (c *Client) Get(ctx context.Context, bucket, key string) ([]byte, WorkStats, error) {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, key)
	resp, err := c.rpc.Call(ctx, MethodGet, e.Encoded())
	if err != nil {
		return nil, WorkStats{}, err
	}
	return decodeDataStats(resp)
}

// Delete removes an object.
func (c *Client) Delete(ctx context.Context, bucket, key string) error {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, key)
	_, err := c.rpc.Call(ctx, MethodDelete, e.Encoded())
	return err
}

// List returns sorted keys with the prefix.
func (c *Client) List(ctx context.Context, bucket, prefix string) ([]string, error) {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, prefix)
	resp, err := c.rpc.Call(ctx, MethodList, e.Encoded())
	if err != nil {
		return nil, err
	}
	d := protowire.NewDecoder(resp)
	var keys []string
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		if f == 1 {
			k, err := d.String()
			if err != nil {
				return nil, err
			}
			keys = append(keys, k)
			continue
		}
		if err := d.Skip(ty); err != nil {
			return nil, err
		}
	}
	return keys, nil
}

// Select runs the S3 Select-like path: project columns (by name; empty =
// all) and filter by pred (ordinals over the object's full schema; nil =
// no filter). It returns the raw CSV payload plus storage work stats.
func (c *Client) Select(ctx context.Context, bucket, key string, columns []string, pred expr.Expr) ([]byte, WorkStats, error) {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, key)
	for _, col := range columns {
		e.String(3, col)
	}
	if pred != nil {
		if err := substrait.EncodeExpr(e, 4, pred); err != nil {
			return nil, WorkStats{}, err
		}
	}
	resp, err := c.rpc.Call(ctx, MethodSelect, e.Encoded())
	if err != nil {
		return nil, WorkStats{}, err
	}
	return decodeDataStats(resp)
}

func decodeDataStats(resp []byte) ([]byte, WorkStats, error) {
	d := protowire.NewDecoder(resp)
	var data []byte
	var st WorkStats
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, st, err
		}
		switch f {
		case 1:
			data, err = d.Bytes()
		case 2:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				st, err = decodeStats(m)
			}
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, st, err
		}
	}
	return data, st, nil
}

// ParseSelectCSV converts a Select response body into a columnar page.
// Column types are resolved from the provided schema by header name. The
// returned meter units reflect the row-oriented parse cost that the paper
// attributes to CSV results (one unit per cell).
func ParseSelectCSV(data []byte, schema *types.Schema) (*column.Page, float64, error) {
	r := csv.NewReader(strings.NewReader(string(data)))
	records, err := r.ReadAll()
	if err != nil {
		return nil, 0, fmt.Errorf("objstore: parsing select CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, 0, fmt.Errorf("objstore: select CSV missing header")
	}
	header := records[0]
	cols := make([]types.Column, len(header))
	for i, name := range header {
		idx := schema.IndexOf(name)
		if idx < 0 {
			return nil, 0, fmt.Errorf("objstore: select CSV has unknown column %q", name)
		}
		cols[i] = schema.Columns[idx]
	}
	out := column.NewPage(types.NewSchema(cols...))
	var units float64
	for _, rec := range records[1:] {
		if len(rec) != len(cols) {
			return nil, 0, fmt.Errorf("objstore: select CSV row has %d fields, want %d", len(rec), len(cols))
		}
		row := make([]types.Value, len(cols))
		for i, field := range rec {
			v, err := types.ParseValue(field, cols[i].Type)
			if err != nil {
				return nil, 0, err
			}
			row[i] = v
		}
		out.AppendRow(row...)
		units += float64(len(cols))
	}
	return out, units, nil
}
