package objstore

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/expr"
	"prestocs/internal/parquetlite"
	"prestocs/internal/protowire"
	"prestocs/internal/rpc"
	"prestocs/internal/substrait"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// RPC method names exposed by the object store server.
const (
	MethodGet    = "obj.Get"
	MethodPut    = "obj.Put"
	MethodList   = "obj.List"
	MethodDelete = "obj.Delete"
	MethodSelect = "obj.Select"
)

// Server exposes a Store over RPC.
type Server struct {
	store *Store
	rpc   *rpc.Server

	// Metrics and Tracer feed the transport's telemetry; optional, set
	// before Listen.
	Metrics *telemetry.Registry
	Tracer  *telemetry.Tracer
}

// NewServer wraps a store.
func NewServer(store *Store) *Server {
	s := &Server{store: store, rpc: rpc.NewServer()}
	s.rpc.Register(MethodGet, s.handleGet)
	s.rpc.Register(MethodPut, s.handlePut)
	s.rpc.Register(MethodList, s.handleList)
	s.rpc.Register(MethodDelete, s.handleDelete)
	s.rpc.Register(MethodSelect, s.handleSelect)
	return s
}

// Listen binds and serves; returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	s.rpc.Metrics = s.Metrics
	s.rpc.Tracer = s.Tracer
	return s.rpc.Listen(addr)
}

// Close shuts the server down.
func (s *Server) Close() error { return s.rpc.Close() }

// Meter exposes the transport meter.
func (s *Server) Meter() *rpc.Meter { return &s.rpc.Meter }

func encodeStats(e *protowire.Encoder, field int, st WorkStats) {
	e.Message(field, func(m *protowire.Encoder) {
		m.Int64(1, st.BytesRead)
		m.Int64(2, st.BytesDecompressed)
		m.Double(3, st.CPUUnits)
		m.Int64(4, st.RowsProcessed)
	})
}

func decodeStats(d *protowire.Decoder) (WorkStats, error) {
	var st WorkStats
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return st, err
		}
		switch f {
		case 1:
			st.BytesRead, err = d.Int64()
		case 2:
			st.BytesDecompressed, err = d.Int64()
		case 3:
			st.CPUUnits, err = d.Double()
		case 4:
			st.RowsProcessed, err = d.Int64()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

func (s *Server) handleGet(_ context.Context, payload []byte) ([]byte, error) {
	bucket, key, err := decodeBucketKey(payload)
	if err != nil {
		return nil, err
	}
	data, err := s.store.Get(bucket, key)
	if err != nil {
		return nil, rpc.WithCode(err, rpc.CodeNotFound)
	}
	e := protowire.NewEncoder()
	e.Bytes(1, data)
	encodeStats(e, 2, WorkStats{BytesRead: int64(len(data))})
	return e.Encoded(), nil
}

func (s *Server) handlePut(_ context.Context, payload []byte) ([]byte, error) {
	d := protowire.NewDecoder(payload)
	var bucket, key string
	var data []byte
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			bucket, err = d.String()
		case 2:
			key, err = d.String()
		case 3:
			data, err = d.Bytes()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, err
		}
	}
	if bucket == "" || key == "" {
		return nil, fmt.Errorf("objstore: put requires bucket and key")
	}
	s.store.Put(bucket, key, data)
	return nil, nil
}

func (s *Server) handleList(_ context.Context, payload []byte) ([]byte, error) {
	bucket, prefix, err := decodeBucketKey(payload)
	if err != nil {
		return nil, err
	}
	keys, err := s.store.List(bucket, prefix)
	if err != nil {
		return nil, err
	}
	e := protowire.NewEncoder()
	for _, k := range keys {
		e.String(1, k)
	}
	return e.Encoded(), nil
}

func (s *Server) handleDelete(_ context.Context, payload []byte) ([]byte, error) {
	bucket, key, err := decodeBucketKey(payload)
	if err != nil {
		return nil, err
	}
	s.store.Delete(bucket, key)
	return nil, nil
}

func decodeBucketKey(payload []byte) (string, string, error) {
	d := protowire.NewDecoder(payload)
	var bucket, key string
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return "", "", err
		}
		switch f {
		case 1:
			bucket, err = d.String()
		case 2:
			key, err = d.String()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return "", "", err
		}
	}
	return bucket, key, nil
}

// handleSelect implements the S3 Select-like path: WHERE + projection over
// one parquetlite object, CSV out. Predicate column ordinals reference the
// object's full schema.
func (s *Server) handleSelect(_ context.Context, payload []byte) ([]byte, error) {
	d := protowire.NewDecoder(payload)
	var bucket, key string
	var columns []string
	var pred expr.Expr
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			bucket, err = d.String()
		case 2:
			key, err = d.String()
		case 3:
			var c string
			c, err = d.String()
			columns = append(columns, c)
		case 4:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				pred, err = substrait.DecodeExpr(m)
			}
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, err
		}
	}
	data, err := s.store.Get(bucket, key)
	if err != nil {
		return nil, rpc.WithCode(err, rpc.CodeNotFound)
	}
	r, err := parquetlite.NewReader(data)
	if err != nil {
		return nil, err
	}
	schema := r.Schema()
	colIdx := make([]int, len(columns))
	for i, name := range columns {
		idx := schema.IndexOf(name)
		if idx < 0 {
			return nil, fmt.Errorf("objstore: select references unknown column %q", name)
		}
		colIdx[i] = idx
	}
	if len(colIdx) == 0 {
		for i := range schema.Columns {
			colIdx = append(colIdx, i)
		}
	}
	// Columns needed: projection plus predicate references (full-schema
	// ordinals).
	needed := map[int]bool{}
	for _, c := range colIdx {
		needed[c] = true
	}
	if pred != nil {
		for _, c := range expr.ReferencedColumns(pred) {
			if c < 0 || c >= schema.Len() {
				return nil, fmt.Errorf("objstore: predicate ordinal %d out of range", c)
			}
			needed[c] = true
		}
	}

	var st WorkStats
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	header := make([]string, len(colIdx))
	for i, c := range colIdx {
		header[i] = schema.Columns[c].Name
	}
	if err := w.Write(header); err != nil {
		return nil, err
	}

	for _, rg := range r.PruneRowGroups(pred) {
		// Materialize the needed columns in full-schema positions so
		// predicate ordinals resolve; untouched columns stay nil and are
		// never read from media.
		page, err := readSparse(r, rg, schema, needed)
		if err != nil {
			return nil, err
		}
		n := r.Meta().RowGroups[rg].NumRows
		// Vectorized predicate evaluation into a selection vector of the
		// surviving rows (kernels in internal/expr); only those rows are
		// formatted.
		var sel []int
		if pred == nil {
			sel = make([]int, n)
			for i := range sel {
				sel[i] = i
			}
		} else {
			sel, err = expr.EvalSelection(pred, page)
			if err != nil {
				return nil, err
			}
			st.CPUUnits += pred.Cost() * float64(n)
		}
		st.RowsProcessed += n
		record := make([]string, len(colIdx))
		for _, row := range sel {
			for i, c := range colIdx {
				record[i] = page.Vectors[c].Value(row).String()
			}
			if err := w.Write(record); err != nil {
				return nil, err
			}
			// CSV formatting cost: ~1 unit per cell.
			st.CPUUnits += float64(len(colIdx))
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return nil, err
	}
	st.BytesRead = r.BytesRead
	st.BytesDecompressed = r.BytesDecompressed
	st.CPUUnits += float64(r.BytesDecompressed) * compress.DecompressCostPerByte(r.Meta().Codec)

	e := protowire.NewEncoder()
	e.Bytes(1, buf.Bytes())
	encodeStats(e, 2, st)
	return e.Encoded(), nil
}

// readSparse materializes only the needed columns of a row group, placing
// them at their full-schema ordinals. Unneeded columns are filled with
// all-NULL vectors (never read from media) so page invariants hold for
// predicate evaluation, which only touches referenced ordinals.
func readSparse(r *parquetlite.Reader, rg int, schema *types.Schema, needed map[int]bool) (*column.Page, error) {
	n := int(r.Meta().RowGroups[rg].NumRows)
	page := &column.Page{Schema: schema, Vectors: make([]*column.Vector, schema.Len())}
	for c, col := range schema.Columns {
		if !needed[c] {
			vec := column.NewVector(col.Type)
			for i := 0; i < n; i++ {
				vec.Append(types.NullValue(col.Type))
			}
			page.Vectors[c] = vec
			continue
		}
		vec, err := r.ReadColumn(rg, c)
		if err != nil {
			return nil, err
		}
		page.Vectors[c] = vec
	}
	return page, nil
}
