package objstore

import (
	"context"
	"strings"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/expr"
	"prestocs/internal/parquetlite"
	"prestocs/internal/types"
)

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.CreateBucket("b")
	s.Put("b", "k1", []byte("v1"))
	s.Put("b", "k2", []byte("v2"))
	s.Put("c", "x", []byte("y")) // implicit bucket

	data, err := s.Get("b", "k1")
	if err != nil || string(data) != "v1" {
		t.Errorf("Get = %q, %v", data, err)
	}
	if _, err := s.Get("nope", "k"); err == nil {
		t.Error("missing bucket accepted")
	}
	if _, err := s.Get("b", "nope"); err == nil {
		t.Error("missing key accepted")
	}
	keys, err := s.List("b", "")
	if err != nil || len(keys) != 2 || keys[0] != "k1" {
		t.Errorf("List = %v, %v", keys, err)
	}
	keys, _ = s.List("b", "k2")
	if len(keys) != 1 || keys[0] != "k2" {
		t.Errorf("prefix list = %v", keys)
	}
	if got := s.Buckets(); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("Buckets = %v", got)
	}
	if s.Size("b", "k1") != 2 || s.Size("b", "zz") != -1 {
		t.Error("Size wrong")
	}
	s.Delete("b", "k1")
	if _, err := s.Get("b", "k1"); err == nil {
		t.Error("deleted object still readable")
	}
	s.Delete("b", "k1") // idempotent
	// Put copies its input.
	buf := []byte("abc")
	s.Put("b", "copy", buf)
	buf[0] = 'X'
	data, _ = s.Get("b", "copy")
	if string(data) != "abc" {
		t.Error("Put must copy data")
	}
}

func TestWorkStatsAdd(t *testing.T) {
	a := WorkStats{BytesRead: 1, BytesDecompressed: 2, CPUUnits: 3, RowsProcessed: 4}
	a.Add(WorkStats{BytesRead: 10, BytesDecompressed: 20, CPUUnits: 30, RowsProcessed: 40})
	if a.BytesRead != 11 || a.BytesDecompressed != 22 || a.CPUUnits != 33 || a.RowsProcessed != 44 {
		t.Errorf("Add = %+v", a)
	}
}

func tableSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "x", Type: types.Float64},
		types.Column{Name: "name", Type: types.String},
	)
}

func tableObject(t *testing.T, codec compress.Codec) []byte {
	t.Helper()
	p := column.NewPage(tableSchema())
	for i := 0; i < 100; i++ {
		p.AppendRow(
			types.IntValue(int64(i)),
			types.FloatValue(float64(i)/10),
			types.StringValue([]string{"red", "green", "blue"}[i%3]),
		)
	}
	data, err := parquetlite.WritePages(tableSchema(), parquetlite.WriterOptions{Codec: codec, RowGroupSize: 32}, p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func startServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer(NewStore())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(addr)
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return srv, cli
}

func TestClientPutGetListDelete(t *testing.T) {
	_, cli := startServer(t)
	if err := cli.Put(context.Background(), "bkt", "obj1", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Put(context.Background(), "bkt", "obj2", []byte("world")); err != nil {
		t.Fatal(err)
	}
	data, st, err := cli.Get(context.Background(), "bkt", "obj1")
	if err != nil || string(data) != "hello" {
		t.Fatalf("Get = %q, %v", data, err)
	}
	if st.BytesRead != 5 {
		t.Errorf("get stats = %+v", st)
	}
	keys, err := cli.List(context.Background(), "bkt", "obj")
	if err != nil || len(keys) != 2 {
		t.Errorf("List = %v, %v", keys, err)
	}
	if err := cli.Delete(context.Background(), "bkt", "obj1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Get(context.Background(), "bkt", "obj1"); err == nil {
		t.Error("get of deleted object succeeded")
	}
	if err := cli.Put(context.Background(), "", "", nil); err == nil {
		t.Error("empty put accepted")
	}
	if _, err := cli.List(context.Background(), "missing", ""); err == nil {
		t.Error("list of missing bucket accepted")
	}
	if cli.Meter().Calls() == 0 {
		t.Error("client meter not counting")
	}
}

func TestSelectFullScan(t *testing.T) {
	_, cli := startServer(t)
	if err := cli.Put(context.Background(), "data", "t.pql", tableObject(t, compress.None)); err != nil {
		t.Fatal(err)
	}
	csvData, st, err := cli.Select(context.Background(), "data", "t.pql", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	page, units, err := ParseSelectCSV(csvData, tableSchema())
	if err != nil {
		t.Fatal(err)
	}
	if page.NumRows() != 100 || page.NumCols() != 3 {
		t.Errorf("select all = %dx%d", page.NumRows(), page.NumCols())
	}
	if units <= 0 || st.RowsProcessed != 100 || st.BytesRead <= 0 {
		t.Errorf("stats = %+v units=%v", st, units)
	}
}

func TestSelectFilterAndProjection(t *testing.T) {
	_, cli := startServer(t)
	if err := cli.Put(context.Background(), "data", "t.pql", tableObject(t, compress.Snappy)); err != nil {
		t.Fatal(err)
	}
	// id >= 90 (full-schema ordinal 0).
	pred, _ := expr.NewCompare(expr.Ge, expr.Col(0, "id", types.Int64), expr.Lit(types.IntValue(90)))
	csvData, st, err := cli.Select(context.Background(), "data", "t.pql", []string{"name", "id"}, pred)
	if err != nil {
		t.Fatal(err)
	}
	page, _, err := ParseSelectCSV(csvData, tableSchema())
	if err != nil {
		t.Fatal(err)
	}
	if page.NumRows() != 10 {
		t.Errorf("filtered rows = %d", page.NumRows())
	}
	if page.Schema.Columns[0].Name != "name" || page.Schema.Columns[1].Name != "id" {
		t.Errorf("projected schema = %v", page.Schema)
	}
	if page.Row(0)[1].I != 90 {
		t.Errorf("first row id = %v", page.Row(0)[1])
	}
	// Row-group pruning: only the last of 4 groups (32 rows) matches.
	if st.RowsProcessed >= 100 {
		t.Errorf("pruning did not engage: processed %d rows", st.RowsProcessed)
	}
	if st.CPUUnits <= 0 || st.BytesDecompressed <= 0 {
		t.Errorf("storage work not metered: %+v", st)
	}
}

func TestSelectProjectionReducesBytes(t *testing.T) {
	_, cli := startServer(t)
	if err := cli.Put(context.Background(), "data", "t.pql", tableObject(t, compress.None)); err != nil {
		t.Fatal(err)
	}
	cli.Meter().Reset()
	if _, _, err := cli.Select(context.Background(), "data", "t.pql", []string{"id"}, nil); err != nil {
		t.Fatal(err)
	}
	projected := cli.Meter().Received()
	cli.Meter().Reset()
	if _, _, err := cli.Select(context.Background(), "data", "t.pql", nil, nil); err != nil {
		t.Fatal(err)
	}
	full := cli.Meter().Received()
	if projected >= full {
		t.Errorf("projection must reduce transfer: %d vs %d", projected, full)
	}
}

func TestSelectErrors(t *testing.T) {
	_, cli := startServer(t)
	if err := cli.Put(context.Background(), "data", "bad.pql", []byte("not a parquet file")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Select(context.Background(), "data", "bad.pql", nil, nil); err == nil {
		t.Error("select over corrupt object succeeded")
	}
	if _, _, err := cli.Select(context.Background(), "data", "missing.pql", nil, nil); err == nil {
		t.Error("select over missing object succeeded")
	}
	if err := cli.Put(context.Background(), "data", "t.pql", tableObject(t, compress.None)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Select(context.Background(), "data", "t.pql", []string{"nosuch"}, nil); err == nil {
		t.Error("unknown column accepted")
	}
	badPred, _ := expr.NewCompare(expr.Gt, expr.Col(99, "zz", types.Int64), expr.Lit(types.IntValue(0)))
	if _, _, err := cli.Select(context.Background(), "data", "t.pql", nil, badPred); err == nil {
		t.Error("out-of-range predicate ordinal accepted")
	}
}

func TestParseSelectCSVErrors(t *testing.T) {
	schema := tableSchema()
	if _, _, err := ParseSelectCSV([]byte(""), schema); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, _, err := ParseSelectCSV([]byte("wat\n1\n"), schema); err == nil {
		t.Error("unknown header accepted")
	}
	if _, _, err := ParseSelectCSV([]byte("id\nxyz\n"), schema); err == nil {
		t.Error("bad int accepted")
	}
}

func TestSelectCSVStringQuoting(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "s", Type: types.String})
	p := column.NewPage(schema)
	p.AppendRow(types.StringValue(`comma, "quoted"`))
	data, err := parquetlite.WritePages(schema, parquetlite.WriterOptions{}, p)
	if err != nil {
		t.Fatal(err)
	}
	_, cli := startServer(t)
	if err := cli.Put(context.Background(), "d", "q.pql", data); err != nil {
		t.Fatal(err)
	}
	csvData, _, err := cli.Select(context.Background(), "d", "q.pql", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	page, _, err := ParseSelectCSV(csvData, schema)
	if err != nil {
		t.Fatal(err)
	}
	if got := page.Row(0)[0].S; got != `comma, "quoted"` {
		t.Errorf("quoting broken: %q", got)
	}
	if !strings.Contains(string(csvData), `"`) {
		t.Error("csv did not quote special chars")
	}
}

func TestSelectDoubleSupport(t *testing.T) {
	// The paper notes S3 Select lacks double support; ours must not.
	schema := types.NewSchema(types.Column{Name: "v", Type: types.Float64})
	p := column.NewPage(schema)
	p.AppendRow(types.FloatValue(3.141592653589793))
	data, _ := parquetlite.WritePages(schema, parquetlite.WriterOptions{}, p)
	_, cli := startServer(t)
	if err := cli.Put(context.Background(), "d", "f.pql", data); err != nil {
		t.Fatal(err)
	}
	csvData, _, err := cli.Select(context.Background(), "d", "f.pql", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	page, _, err := ParseSelectCSV(csvData, schema)
	if err != nil {
		t.Fatal(err)
	}
	if page.Row(0)[0].F != 3.141592653589793 {
		t.Errorf("double precision lost: %v", page.Row(0)[0].F)
	}
}
