package metastore

import (
	"path/filepath"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/parquetlite"
	"prestocs/internal/types"
)

func sampleTable() *Table {
	return &Table{
		Schema: "lanl",
		Name:   "laghos",
		Columns: types.NewSchema(
			types.Column{Name: "vertex_id", Type: types.Int64},
			types.Column{Name: "x", Type: types.Float64},
		),
		Bucket:   "lanl",
		Objects:  []string{"part-000.pql", "part-001.pql"},
		Codec:    compress.Snappy,
		RowCount: 1000,
		ColumnStats: map[string]ColumnStats{
			"vertex_id": {Min: types.IntValue(0), Max: types.IntValue(499), NDV: 500},
			"x":         {Min: types.FloatValue(0), Max: types.FloatValue(4), NDV: 900},
		},
	}
}

func TestRegisterGetListDrop(t *testing.T) {
	m := New()
	if err := m.Register(sampleTable()); err != nil {
		t.Fatal(err)
	}
	got, err := m.Get("LANL", "Laghos") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if got.QualifiedName() != "lanl.laghos" {
		t.Errorf("name = %s", got.QualifiedName())
	}
	if _, err := m.Get("lanl", "nope"); err == nil {
		t.Error("missing table accepted")
	}
	if list := m.List(); len(list) != 1 || list[0] != "lanl.laghos" {
		t.Errorf("List = %v", list)
	}
	m.Drop("lanl", "laghos")
	if len(m.List()) != 0 {
		t.Error("drop failed")
	}
}

func TestRegisterValidation(t *testing.T) {
	m := New()
	if err := m.Register(&Table{Name: "x"}); err == nil {
		t.Error("missing schema accepted")
	}
	if err := m.Register(&Table{Schema: "s", Name: "x"}); err == nil {
		t.Error("missing columns accepted")
	}
}

func TestStatsLookup(t *testing.T) {
	tbl := sampleTable()
	cs, ok := tbl.Stats("vertex_id")
	if !ok || cs.NDV != 500 {
		t.Errorf("stats = %+v, %v", cs, ok)
	}
	if _, ok := tbl.Stats("zzz"); ok {
		t.Error("missing column stats found")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := New()
	if err := m.Register(sampleTable()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "catalog.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m2.Get("lanl", "laghos")
	if err != nil {
		t.Fatal(err)
	}
	if got.RowCount != 1000 || got.Codec != compress.Snappy || len(got.Objects) != 2 {
		t.Errorf("loaded table = %+v", got)
	}
	cs, _ := got.Stats("x")
	if cs.Max.F != 4 || cs.NDV != 900 {
		t.Errorf("loaded stats = %+v", cs)
	}
	if !got.Columns.Equal(sampleTable().Columns) {
		t.Errorf("loaded schema = %v", got.Columns)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading absent file succeeded")
	}
}

func TestStatsFromObjects(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "a", Type: types.Int64},
		types.Column{Name: "b", Type: types.Float64},
	)
	mk := func(lo, hi int) []byte {
		p := column.NewPage(schema)
		for i := lo; i <= hi; i++ {
			p.AppendRow(types.IntValue(int64(i)), types.FloatValue(float64(i)*1.5))
		}
		img, err := parquetlite.WritePages(schema, parquetlite.WriterOptions{RowGroupSize: 16}, p)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	rows, bytes, stats, err := StatsFromObjects(schema, [][]byte{mk(0, 49), mk(50, 99)})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 100 || bytes <= 0 {
		t.Errorf("rows=%d bytes=%d", rows, bytes)
	}
	if stats["a"].Min.I != 0 || stats["a"].Max.I != 99 {
		t.Errorf("a stats = %+v", stats["a"])
	}
	if stats["b"].Max.F != 99*1.5 {
		t.Errorf("b stats = %+v", stats["b"])
	}
	// Mismatched schema rejected.
	other := types.NewSchema(types.Column{Name: "z", Type: types.Int64})
	if _, _, _, err := StatsFromObjects(other, [][]byte{mk(0, 1)}); err == nil {
		t.Error("schema mismatch accepted")
	}
	if _, _, _, err := StatsFromObjects(schema, [][]byte{[]byte("junk")}); err == nil {
		t.Error("corrupt object accepted")
	}
}
