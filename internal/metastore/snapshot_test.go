package metastore

import (
	"fmt"
	"sync"
	"testing"

	"prestocs/internal/types"
)

// snapshotTable builds a two-object table with full per-object
// bookkeeping, the shape the ingest writer always produces.
func snapshotTable() *Table {
	schema := types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "v", Type: types.Float64},
	)
	return &Table{
		Schema:  "default",
		Name:    "events",
		Columns: schema,
		Bucket:  "events",
		Objects: []string{"events-part-000.pql", "events-part-001.pql"},
		ObjectStats: map[string]map[string]ColumnStats{
			"events-part-000.pql": {
				"id": {Min: types.IntValue(0), Max: types.IntValue(99), NumValues: 100, NDV: 100},
				"v":  {Min: types.FloatValue(0), Max: types.FloatValue(1), NumValues: 100, NDV: 90},
			},
			"events-part-001.pql": {
				"id": {Min: types.IntValue(100), Max: types.IntValue(199), NumValues: 100, NDV: 100},
				"v":  {Min: types.FloatValue(1), Max: types.FloatValue(2), NumValues: 100, NDV: 90},
			},
		},
		ObjectBytes: map[string]int64{"events-part-000.pql": 4000, "events-part-001.pql": 4100},
		RowCount:    200,
		TotalBytes:  8100,
		ColumnStats: map[string]ColumnStats{
			"id": {Min: types.IntValue(0), Max: types.IntValue(199), NumValues: 200, NDV: 200},
			"v":  {Min: types.FloatValue(0), Max: types.FloatValue(2), NumValues: 200, NDV: 180},
		},
	}
}

func addFor(key string, lo, hi int64, rows int64, bytes int64) ObjectAdd {
	return ObjectAdd{
		Key:   key,
		Bytes: bytes,
		Rows:  rows,
		Stats: map[string]ColumnStats{
			"id": {Min: types.IntValue(lo), Max: types.IntValue(hi), NumValues: rows, NDV: rows},
			"v":  {Min: types.FloatValue(0), Max: types.FloatValue(3), NumValues: rows, NDV: rows / 2},
		},
	}
}

func TestSnapshotCommitAppend(t *testing.T) {
	m := New()
	if err := m.Register(snapshotTable()); err != nil {
		t.Fatal(err)
	}
	v0 := m.Version("default", "events")
	old, _ := m.Get("default", "events")

	next, err := m.CommitObjects("default", "events",
		[]ObjectAdd{addFor("events-ingest-000003.pql", 200, 299, 100, 4200)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Version("default", "events"); got != v0+1 {
		t.Errorf("version = %d, want %d", got, v0+1)
	}
	if len(next.Objects) != 3 || next.RowCount != 300 || next.TotalBytes != 12300 {
		t.Errorf("next = %d objects, %d rows, %d bytes", len(next.Objects), next.RowCount, next.TotalBytes)
	}
	// The old *Table is untouched: snapshot readers keep a frozen view.
	if len(old.Objects) != 2 || old.RowCount != 200 {
		t.Errorf("old table mutated: %d objects, %d rows", len(old.Objects), old.RowCount)
	}
	cs := next.ColumnStats["id"]
	if cs.Max.I != 299 || cs.NumValues != 300 {
		t.Errorf("merged id stats = %+v", cs)
	}
	// Pure append: NDV grows by the new object's estimate.
	if cs.NDV != 300 {
		t.Errorf("append NDV = %d, want 300", cs.NDV)
	}
	if m.TombstoneCount("default", "events") != 0 {
		t.Error("append produced tombstones")
	}
}

func TestSnapshotCommitRewrite(t *testing.T) {
	m := New()
	if err := m.Register(snapshotTable()); err != nil {
		t.Fatal(err)
	}
	// Compaction shape: both parts merge into one object, same rows.
	merged := ObjectAdd{
		Key:   "events-compact-000002.pql",
		Bytes: 7000,
		Rows:  200,
		Stats: map[string]ColumnStats{
			"id": {Min: types.IntValue(0), Max: types.IntValue(199), NumValues: 200, NDV: 200},
			"v":  {Min: types.FloatValue(0), Max: types.FloatValue(2), NumValues: 200, NDV: 150},
		},
	}
	next, err := m.CommitObjects("default", "events",
		[]ObjectAdd{merged}, []string{"events-part-000.pql", "events-part-001.pql"})
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Objects) != 1 || next.RowCount != 200 || next.TotalBytes != 7000 {
		t.Errorf("next = %d objects, %d rows, %d bytes", len(next.Objects), next.RowCount, next.TotalBytes)
	}
	// Rewrite: table NDV unchanged — merging objects does not change the
	// value distribution.
	if got := next.ColumnStats["v"].NDV; got != 180 {
		t.Errorf("rewrite NDV = %d, want 180", got)
	}
	if got := m.TombstoneCount("default", "events"); got != 2 {
		t.Errorf("tombstones = %d, want 2", got)
	}
}

func TestSnapshotCommitValidation(t *testing.T) {
	m := New()
	if err := m.Register(snapshotTable()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CommitObjects("default", "nope", nil, nil); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := m.CommitObjects("default", "events", nil, []string{"ghost.pql"}); err == nil {
		t.Error("removing a non-live object accepted")
	}
	if _, err := m.CommitObjects("default", "events",
		[]ObjectAdd{addFor("events-part-000.pql", 0, 9, 10, 100)}, nil); err == nil {
		t.Error("adding an already-live key accepted")
	}
	noStats := ObjectAdd{Key: "bare.pql", Bytes: 10, Rows: 1}
	if _, err := m.CommitObjects("default", "events", []ObjectAdd{noStats}, nil); err == nil {
		t.Error("add without object stats accepted")
	}
}

func TestSnapshotPinDefersReap(t *testing.T) {
	m := New()
	if err := m.Register(snapshotTable()); err != nil {
		t.Fatal(err)
	}
	// A scan pins the pre-compaction snapshot.
	pinned, pin, err := m.GetPinned("default", "events")
	if err != nil {
		t.Fatal(err)
	}
	if len(pinned.Objects) != 2 {
		t.Fatalf("pinned snapshot has %d objects", len(pinned.Objects))
	}
	if m.PinnedCount() != 1 {
		t.Errorf("PinnedCount = %d", m.PinnedCount())
	}

	if _, err := m.CommitObjects("default", "events",
		[]ObjectAdd{addFor("events-compact-000002.pql", 0, 199, 200, 7000)},
		[]string{"events-part-000.pql", "events-part-001.pql"}); err != nil {
		t.Fatal(err)
	}

	// The pin predates the removal, so nothing reaps.
	if got := m.ReapTombstones("default", "events"); len(got) != 0 {
		t.Fatalf("reaped %v while pinned", got)
	}
	if got := m.TombstoneCount("default", "events"); got != 2 {
		t.Errorf("tombstones = %d, want 2", got)
	}

	pin.Release()
	pin.Release() // idempotent
	if m.PinnedCount() != 0 {
		t.Errorf("PinnedCount after release = %d", m.PinnedCount())
	}
	reaped := m.ReapTombstones("default", "events")
	if len(reaped) != 2 || reaped[0].Key != "events-part-000.pql" || reaped[1].Key != "events-part-001.pql" {
		t.Errorf("reaped = %v", reaped)
	}
	if reaped[0].Bucket != "events" {
		t.Errorf("tombstone bucket = %q", reaped[0].Bucket)
	}
	if m.TombstoneCount("default", "events") != 0 {
		t.Error("tombstones remain after reap")
	}
}

func TestSnapshotPinAfterRemovalReaps(t *testing.T) {
	m := New()
	if err := m.Register(snapshotTable()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CommitObjects("default", "events",
		[]ObjectAdd{addFor("events-compact-000002.pql", 0, 199, 200, 7000)},
		[]string{"events-part-000.pql"}); err != nil {
		t.Fatal(err)
	}
	// This pin is at the post-removal version: it can never reference the
	// tombstoned object, so reaping proceeds.
	_, pin, err := m.GetPinned("default", "events")
	if err != nil {
		t.Fatal(err)
	}
	defer pin.Release()
	if got := m.ReapTombstones("default", "events"); len(got) != 1 {
		t.Errorf("reaped %d tombstones, want 1", len(got))
	}
}

func TestSnapshotNextObjectSeq(t *testing.T) {
	m := New()
	if err := m.Register(snapshotTable()); err != nil {
		t.Fatal(err)
	}
	// Live set tops out at part-001 → first issued seq is 2.
	if got := m.NextObjectSeq("default", "events"); got != 2 {
		t.Errorf("first seq = %d, want 2", got)
	}
	if got := m.NextObjectSeq("default", "events"); got != 3 {
		t.Errorf("second seq = %d, want 3", got)
	}
}

func TestSnapshotSeqSkipsTombstones(t *testing.T) {
	m := New()
	if err := m.Register(snapshotTable()); err != nil {
		t.Fatal(err)
	}
	// Compact everything into one high-numbered object, leaving
	// tombstones for part-000/part-001, then drop the in-memory counter
	// state by reaping nothing: a fresh metastore process would seed off
	// the live set AND the tombstones.
	if _, err := m.CommitObjects("default", "events",
		[]ObjectAdd{addFor("events-compact-000009.pql", 0, 199, 200, 7000)},
		[]string{"events-part-000.pql", "events-part-001.pql"}); err != nil {
		t.Fatal(err)
	}
	// Counter must seed above the tombstoned suffixes and the live
	// compact-000009 suffix — never reissuing a key whose deferred
	// physical delete would destroy fresh data.
	if got := m.NextObjectSeq("default", "events"); got != 10 {
		t.Errorf("seq after compaction = %d, want 10", got)
	}
}

func TestSnapshotConcurrentCommitAndPin(t *testing.T) {
	m := New()
	if err := m.Register(snapshotTable()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const writers, readers = 4, 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("events-ingest-%03d-%03d.pql", w, m.NextObjectSeq("default", "events"))
				if _, err := m.CommitObjects("default", "events",
					[]ObjectAdd{addFor(key, 0, 9, 10, 100)}, nil); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tbl, pin, err := m.GetPinned("default", "events")
				if err != nil {
					t.Errorf("pin: %v", err)
					return
				}
				// A pinned snapshot is internally consistent no matter how
				// many commits race it: accounting matches the object list.
				var rows int64
				for _, o := range tbl.Objects {
					rows += objectRows(tbl, o)
				}
				if rows != tbl.RowCount {
					t.Errorf("snapshot rows %d != table RowCount %d", rows, tbl.RowCount)
				}
				pin.Release()
			}
		}()
	}
	wg.Wait()
	if m.PinnedCount() != 0 {
		t.Errorf("PinnedCount = %d after all releases", m.PinnedCount())
	}
	tbl, _ := m.Get("default", "events")
	if want := 200 + int64(writers*25*10); tbl.RowCount != want {
		t.Errorf("final RowCount = %d, want %d", tbl.RowCount, want)
	}
}
