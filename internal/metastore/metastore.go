// Package metastore implements the Hive-metastore-like catalog: schemas,
// tables, their object layout (which bucket/objects hold the data) and
// column statistics (min/max, NDV, null count, row count). The Presto-OCS
// connector's Selectivity Analyzer consumes these statistics exactly as
// the paper describes (§4: min/max for range-filter selectivity, NDV for
// aggregation cardinality, row count for reduction ratios).
package metastore

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"prestocs/internal/compress"
	"prestocs/internal/parquetlite"
	"prestocs/internal/types"
)

// ColumnStats describes one column of a table (or of one object, when
// held in Table.ObjectStats).
type ColumnStats struct {
	Min       types.Value `json:"min"`
	Max       types.Value `json:"max"`
	NullCount int64       `json:"null_count"`
	// NDV is the number of distinct values (exact when computed by the
	// generator, else an estimate).
	NDV int64 `json:"ndv"`
	// NumValues is the number of stored values including NULLs; zero
	// means the count was not recorded, so consumers must treat the
	// stats as unreliable rather than as proof of emptiness.
	NumValues int64 `json:"num_values,omitempty"`
}

// Table is a catalog entry.
type Table struct {
	Schema  string        `json:"schema"`
	Name    string        `json:"name"`
	Columns *types.Schema `json:"columns"`
	// Bucket and Objects give the object-store layout: one object per
	// file, each a parquetlite image. Objects are the unit of split
	// generation.
	Bucket  string   `json:"bucket"`
	Objects []string `json:"objects"`
	// Codec records the column-chunk compression.
	Codec compress.Codec `json:"codec"`
	// RowCount is the total row count across objects.
	RowCount int64 `json:"row_count"`
	// TotalBytes is the stored (compressed) size across objects.
	TotalBytes int64 `json:"total_bytes"`
	// ColumnStats is keyed by column name.
	ColumnStats map[string]ColumnStats `json:"column_stats"`
	// ObjectStats holds per-object column statistics (object key →
	// column name → stats), the zone maps the connector intersects with
	// a pushed-down filter to drop whole splits before scheduling them.
	// Optional: tables registered without it simply never prune splits.
	ObjectStats map[string]map[string]ColumnStats `json:"object_stats,omitempty"`
	// ObjectBytes records each object's stored size, which the compactor
	// uses to pick small objects without fetching them and CommitObjects
	// uses to keep TotalBytes exact across removals. Optional for legacy
	// catalogs; the ingest path always records it.
	ObjectBytes map[string]int64 `json:"object_bytes,omitempty"`
	// DisjointKeys lists columns whose values never span objects (e.g.
	// mesh subdomain ids in simulation outputs). Grouping by such columns
	// makes per-object aggregation complete, which the OCS connector
	// requires before pushing post-aggregation operators.
	DisjointKeys []string `json:"disjoint_keys,omitempty"`
}

// QualifiedName returns "schema.name".
func (t *Table) QualifiedName() string { return t.Schema + "." + t.Name }

// Stats returns the stats for a column, with ok=false when absent.
func (t *Table) Stats(column string) (ColumnStats, bool) {
	cs, ok := t.ColumnStats[column]
	return cs, ok
}

// Metastore is a thread-safe catalog.
type Metastore struct {
	mu     sync.RWMutex
	tables map[string]*Table
	// versions counts registration changes per table key. Register,
	// CommitObjects and Drop bump it, so a cached table definition
	// (internal/cache) detects staleness with one Version call instead of
	// a full re-read. Versions survive drops: re-registering a dropped
	// table continues its counter.
	versions map[string]uint64
	// pins refcounts outstanding snapshot pins per table key and pinned
	// version; tombstones at versions above a live pin are not reaped.
	pins     map[string]map[uint64]int
	pinCount int
	// tombstones holds removed object keys awaiting physical deletion
	// (see snapshot.go).
	tombstones map[string][]Tombstone
	// objSeq issues process-monotonic object-name sequence numbers per
	// table (see NextObjectSeq).
	objSeq map[string]uint64
}

// New returns an empty metastore.
func New() *Metastore {
	return &Metastore{tables: make(map[string]*Table), versions: make(map[string]uint64)}
}

// Register adds or replaces a table, bumping its version.
func (m *Metastore) Register(t *Table) error {
	if t.Schema == "" || t.Name == "" {
		return fmt.Errorf("metastore: table needs schema and name")
	}
	if t.Columns == nil || t.Columns.Len() == 0 {
		return fmt.Errorf("metastore: table %s has no columns", t.QualifiedName())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.ToLower(t.QualifiedName())
	m.versions[key]++
	m.tables[key] = t
	return nil
}

// Version returns the table's registration version (0 when the table was
// never registered). It is the cheap staleness check the metadata cache
// performs on every hit.
func (m *Metastore) Version(schema, name string) uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.versions[strings.ToLower(schema+"."+name)]
}

// Get looks a table up by schema and name (case-insensitive).
func (m *Metastore) Get(schema, name string) (*Table, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.tables[strings.ToLower(schema+"."+name)]
	if !ok {
		return nil, fmt.Errorf("metastore: no such table %s.%s", schema, name)
	}
	return t, nil
}

// List returns all qualified table names, sorted.
func (m *Metastore) List() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for _, t := range m.tables {
		out = append(out, t.QualifiedName())
	}
	sort.Strings(out)
	return out
}

// Drop removes a table, bumping its version so cached entries invalidate.
func (m *Metastore) Drop(schema, name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.ToLower(schema + "." + name)
	if _, ok := m.tables[key]; ok {
		m.versions[key]++
	}
	delete(m.tables, key)
}

// Save persists the catalog as JSON.
func (m *Metastore) Save(path string) error {
	m.mu.RLock()
	tables := make([]*Table, 0, len(m.tables))
	for _, t := range m.tables {
		tables = append(tables, t)
	}
	m.mu.RUnlock()
	sort.Slice(tables, func(i, j int) bool { return tables[i].QualifiedName() < tables[j].QualifiedName() })
	data, err := json.MarshalIndent(tables, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a catalog saved by Save.
func Load(path string) (*Metastore, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	if err := json.Unmarshal(data, &tables); err != nil {
		return nil, fmt.Errorf("metastore: parsing %s: %w", path, err)
	}
	m := New()
	for _, t := range tables {
		if err := m.Register(t); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// StatsFromObjects aggregates table statistics by reading the footers of
// object images. NDV is estimated per column by merging chunk-level
// min/max heuristics; callers that know exact NDVs (the data generators)
// should overwrite them.
func StatsFromObjects(schema *types.Schema, images [][]byte) (rowCount, totalBytes int64, colStats map[string]ColumnStats, err error) {
	colStats = make(map[string]ColumnStats, schema.Len())
	for _, c := range schema.Columns {
		colStats[c.Name] = ColumnStats{
			Min: types.NullValue(c.Type),
			Max: types.NullValue(c.Type),
		}
	}
	for _, img := range images {
		r, rerr := parquetlite.NewReader(img)
		if rerr != nil {
			return 0, 0, nil, rerr
		}
		if !r.Schema().Equal(schema) {
			return 0, 0, nil, fmt.Errorf("metastore: object schema %s does not match table %s", r.Schema(), schema)
		}
		rowCount += r.NumRows()
		totalBytes += int64(len(img))
		for ci, c := range schema.Columns {
			st := r.ColumnStats(ci)
			agg := colStats[c.Name]
			agg.NullCount += st.NullCount
			agg.NumValues += st.NumValues
			if !st.Min.Null && (agg.Min.Null || types.Compare(st.Min, agg.Min) < 0) {
				agg.Min = st.Min
			}
			if !st.Max.Null && (agg.Max.Null || types.Compare(st.Max, agg.Max) > 0) {
				agg.Max = st.Max
			}
			colStats[c.Name] = agg
		}
	}
	return rowCount, totalBytes, colStats, nil
}

// ObjectStatsFromImages computes per-object column statistics (the
// zone maps split pruning consumes) by reading each object's footer.
// keys and images are parallel slices; the result is keyed by object
// key, then column name.
func ObjectStatsFromImages(schema *types.Schema, keys []string, images [][]byte) (map[string]map[string]ColumnStats, error) {
	if len(keys) != len(images) {
		return nil, fmt.Errorf("metastore: %d keys for %d images", len(keys), len(images))
	}
	out := make(map[string]map[string]ColumnStats, len(keys))
	for i, img := range images {
		r, err := parquetlite.NewReader(img)
		if err != nil {
			return nil, err
		}
		if !r.Schema().Equal(schema) {
			return nil, fmt.Errorf("metastore: object schema %s does not match table %s", r.Schema(), schema)
		}
		per := make(map[string]ColumnStats, schema.Len())
		for ci, c := range schema.Columns {
			st := r.ColumnStats(ci)
			per[c.Name] = ColumnStats{
				Min:       st.Min,
				Max:       st.Max,
				NullCount: st.NullCount,
				NumValues: st.NumValues,
			}
		}
		out[keys[i]] = per
	}
	return out, nil
}
