// Snapshot-consistent catalog mutations. Tables are immutable once
// registered: every change replaces the whole *Table pointer under one
// version bump, so a reader holding a pointer sees a frozen object set.
// This file adds the three pieces the write path needs on top of that:
//
//   - CommitObjects: an atomic object-set transition (add new objects,
//     remove compacted ones, merge stats) that produces a fresh *Table
//     and bumps the version exactly once, so the PR 6 caches invalidate
//     on the next hit.
//   - Pins: a query pins the (table, version) pair it planned against.
//     While any pin at version < W exists, objects removed at version W
//     must stay in storage, because a pinned scan may still fetch them.
//   - Tombstones: removed object keys wait here until every pin that
//     could reference them is released, then ReapTombstones hands them
//     to the caller for physical deletion.
package metastore

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"prestocs/internal/types"
)

// ObjectAdd describes one new object entering a table's live set.
type ObjectAdd struct {
	Key   string
	Bytes int64
	Rows  int64
	// Stats is the per-column zone map for the object (min/max, nulls,
	// value counts, and an NDV estimate from the writer's distinct
	// tracking). Required: the ingest path exists so split pruning keeps
	// working on fresh data.
	Stats map[string]ColumnStats
}

// Tombstone names an object that left a table's live set at RemovedAt
// and is awaiting physical deletion from storage.
type Tombstone struct {
	Bucket    string
	Key       string
	RemovedAt uint64
}

// Pin holds a table version live: tombstones at versions above the pin
// are not reaped until it is released. Release is idempotent.
type Pin struct {
	m        *Metastore
	key      string
	version  uint64
	released atomic.Bool
}

// Version reports the table version the pin was taken at.
func (p *Pin) Version() uint64 { return p.version }

// Release drops the pin. Safe to call more than once; only the first
// call has an effect.
func (p *Pin) Release() {
	if p == nil || !p.released.CompareAndSwap(false, true) {
		return
	}
	p.m.mu.Lock()
	defer p.m.mu.Unlock()
	refs := p.m.pins[p.key]
	if refs == nil {
		return
	}
	refs[p.version]--
	if refs[p.version] <= 0 {
		delete(refs, p.version)
	}
	if len(refs) == 0 {
		delete(p.m.pins, p.key)
	}
	p.m.pinCount--
}

// GetPinned atomically reads a table and pins the version it was read
// at, so compaction cannot physically delete objects this snapshot still
// references. Callers must Release the pin when the read finishes.
func (m *Metastore) GetPinned(schema, name string) (*Table, *Pin, error) {
	key := strings.ToLower(schema + "." + name)
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tables[key]
	if !ok {
		return nil, nil, fmt.Errorf("metastore: no such table %s.%s", schema, name)
	}
	v := m.versions[key]
	if m.pins == nil {
		m.pins = make(map[string]map[uint64]int)
	}
	if m.pins[key] == nil {
		m.pins[key] = make(map[uint64]int)
	}
	m.pins[key][v]++
	m.pinCount++
	return t, &Pin{m: m, key: key, version: v}, nil
}

// PinnedCount reports the number of outstanding pins across all tables
// (the snapshot-pins gauge).
func (m *Metastore) PinnedCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.pinCount
}

// minPinnedLocked returns the smallest pinned version for key, with
// ok=false when nothing is pinned. Caller holds m.mu.
func (m *Metastore) minPinnedLocked(key string) (uint64, bool) {
	refs := m.pins[key]
	if len(refs) == 0 {
		return 0, false
	}
	first := true
	var min uint64
	for v := range refs {
		if first || v < min {
			min, first = v, false
		}
	}
	return min, true
}

// CommitObjects atomically transitions a table's object set: adds enter
// the live set, removes leave it (becoming tombstones), per-object and
// table-level statistics are re-merged, and the version bumps exactly
// once. The previous *Table is left untouched, so snapshots that pinned
// it keep a consistent view. Returns the new table.
//
// Row and byte accounting for removals relies on the per-object
// bookkeeping (ObjectBytes and object-stat value counts) that the
// ingest writer always records.
func (m *Metastore) CommitObjects(schema, name string, adds []ObjectAdd, removes []string) (*Table, error) {
	key := strings.ToLower(schema + "." + name)
	m.mu.Lock()
	defer m.mu.Unlock()
	old, ok := m.tables[key]
	if !ok {
		return nil, fmt.Errorf("metastore: no such table %s.%s", schema, name)
	}
	live := make(map[string]bool, len(old.Objects))
	for _, o := range old.Objects {
		live[o] = true
	}
	for _, r := range removes {
		if !live[r] {
			return nil, fmt.Errorf("metastore: commit removes %q which is not a live object of %s", r, old.QualifiedName())
		}
	}
	for _, a := range adds {
		if live[a.Key] {
			return nil, fmt.Errorf("metastore: commit adds %q which is already a live object of %s", a.Key, old.QualifiedName())
		}
		if len(a.Stats) == 0 {
			return nil, fmt.Errorf("metastore: commit adds %q without object stats; ingest must register fresh zone maps", a.Key)
		}
	}

	next := m.buildNextTable(old, adds, removes)
	newVersion := m.versions[key] + 1
	m.versions[key] = newVersion
	m.tables[key] = next
	if len(removes) > 0 {
		if m.tombstones == nil {
			m.tombstones = make(map[string][]Tombstone)
		}
		for _, r := range removes {
			m.tombstones[key] = append(m.tombstones[key], Tombstone{Bucket: old.Bucket, Key: r, RemovedAt: newVersion})
		}
	}
	return next, nil
}

// buildNextTable assembles the successor table value for CommitObjects.
// Caller holds m.mu.
func (m *Metastore) buildNextTable(old *Table, adds []ObjectAdd, removes []string) *Table {
	removed := make(map[string]bool, len(removes))
	for _, r := range removes {
		removed[r] = true
	}
	next := &Table{
		Schema:       old.Schema,
		Name:         old.Name,
		Columns:      old.Columns,
		Bucket:       old.Bucket,
		Codec:        old.Codec,
		DisjointKeys: old.DisjointKeys,
		ObjectStats:  make(map[string]map[string]ColumnStats, len(old.ObjectStats)+len(adds)),
		ObjectBytes:  make(map[string]int64, len(old.ObjectBytes)+len(adds)),
		ColumnStats:  make(map[string]ColumnStats, len(old.ColumnStats)),
	}
	for _, o := range old.Objects {
		if removed[o] {
			continue
		}
		next.Objects = append(next.Objects, o)
		if st, ok := old.ObjectStats[o]; ok {
			next.ObjectStats[o] = st
		}
		if b, ok := old.ObjectBytes[o]; ok {
			next.ObjectBytes[o] = b
		}
	}
	for _, a := range adds {
		next.Objects = append(next.Objects, a.Key)
		next.ObjectStats[a.Key] = a.Stats
		next.ObjectBytes[a.Key] = a.Bytes
	}

	// Row/byte totals: carry the old totals, subtract what the removed
	// objects accounted for, add the new objects.
	next.RowCount = old.RowCount
	next.TotalBytes = old.TotalBytes
	for _, r := range removes {
		next.RowCount -= objectRows(old, r)
		next.TotalBytes -= old.ObjectBytes[r]
	}
	for _, a := range adds {
		next.RowCount += a.Rows
		next.TotalBytes += a.Bytes
	}

	// Table-level column stats: min/max/nulls/value counts re-merge
	// exactly from the surviving zone maps. NDV cannot be re-derived from
	// per-object estimates without double counting values that span
	// objects, so: pure appends grow it by the new objects' NDV (capped
	// at the value count), while rewrites (compaction) keep it — merging
	// objects does not change the value distribution.
	for name, oldCS := range old.ColumnStats {
		merged := ColumnStats{Min: oldCS.Min, Max: oldCS.Max, NDV: oldCS.NDV}
		merged.Min.Null, merged.Max.Null = true, true
		for _, key := range next.Objects {
			st, ok := next.ObjectStats[key][name]
			if !ok {
				continue
			}
			merged.NullCount += st.NullCount
			merged.NumValues += st.NumValues
			if !st.Min.Null && (merged.Min.Null || types.Compare(st.Min, merged.Min) < 0) {
				merged.Min = st.Min
			}
			if !st.Max.Null && (merged.Max.Null || types.Compare(st.Max, merged.Max) > 0) {
				merged.Max = st.Max
			}
		}
		if len(removes) == 0 {
			for _, a := range adds {
				merged.NDV += a.Stats[name].NDV
			}
		}
		if merged.NDV > merged.NumValues {
			merged.NDV = merged.NumValues
		}
		next.ColumnStats[name] = merged
	}
	return next
}

// objectRows reports the row count of one object from its zone map
// (every column stores NumValues == rows including NULLs); zero when the
// object has no recorded stats.
func objectRows(t *Table, key string) int64 {
	st, ok := t.ObjectStats[key]
	if !ok || t.Columns == nil || t.Columns.Len() == 0 {
		return 0
	}
	return st[t.Columns.Columns[0].Name].NumValues
}

// ReapTombstones pops and returns every tombstone of the table that no
// outstanding pin can still reference — i.e. whose RemovedAt version is
// at or below every pinned version. The caller deletes the returned
// objects from storage; an object whose physical delete fails is merely
// an invisible orphan (it left the live set at commit time), so the pop
// is safe even if deletion is best-effort.
func (m *Metastore) ReapTombstones(schema, name string) []Tombstone {
	key := strings.ToLower(schema + "." + name)
	m.mu.Lock()
	defer m.mu.Unlock()
	all := m.tombstones[key]
	if len(all) == 0 {
		return nil
	}
	minPinned, pinned := m.minPinnedLocked(key)
	var reap, keep []Tombstone
	for _, ts := range all {
		if !pinned || ts.RemovedAt <= minPinned {
			reap = append(reap, ts)
		} else {
			keep = append(keep, ts)
		}
	}
	if len(keep) == 0 {
		delete(m.tombstones, key)
	} else {
		m.tombstones[key] = keep
	}
	sort.Slice(reap, func(i, j int) bool { return reap[i].Key < reap[j].Key })
	return reap
}

// TombstoneCount reports how many objects of the table await physical
// deletion.
func (m *Metastore) TombstoneCount(schema, name string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.tombstones[strings.ToLower(schema+"."+name)])
}

// NextObjectSeq issues a monotonic sequence number for naming new
// objects of the table. The first call seeds the counter above every
// numeric suffix found in the live object set AND the tombstones, and
// numbers are never reissued while the process lives — reusing a
// tombstoned key would let the deferred physical delete destroy
// freshly ingested data.
func (m *Metastore) NextObjectSeq(schema, name string) uint64 {
	key := strings.ToLower(schema + "." + name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.objSeq == nil {
		m.objSeq = make(map[string]uint64)
	}
	if _, ok := m.objSeq[key]; !ok {
		var max uint64
		if t, live := m.tables[key]; live {
			for _, o := range t.Objects {
				if n := trailingSeq(o); n > max {
					max = n
				}
			}
		}
		for _, ts := range m.tombstones[key] {
			if n := trailingSeq(ts.Key); n > max {
				max = n
			}
		}
		m.objSeq[key] = max
	}
	m.objSeq[key]++
	return m.objSeq[key]
}

// trailingSeq extracts the last run of digits in an object key (ignoring
// the extension), or 0.
func trailingSeq(key string) uint64 {
	end := -1
	for i := len(key) - 1; i >= 0; i-- {
		c := key[i]
		if c >= '0' && c <= '9' {
			if end < 0 {
				end = i + 1
			}
			continue
		}
		if end >= 0 {
			var n uint64
			for _, d := range key[i+1 : end] {
				n = n*10 + uint64(d-'0')
			}
			return n
		}
	}
	return 0
}
