package ocsserver

import (
	"errors"
	"sync"
	"testing"
	"time"

	"prestocs/internal/telemetry"
)

// TestSchedulerFairRoundRobin pins the fairness property: with one
// worker and two queues, queued tasks execute alternately regardless of
// which queue filled up first.
func TestSchedulerFairRoundRobin(t *testing.T) {
	s := newScanScheduler() // vet-concurrency:allow unit test constructs the scheduler directly
	defer s.close()
	reg := telemetry.NewRegistry()
	g := reg.Gauge(telemetry.MetricScanSchedQueries)
	qa := s.register(1, g)
	qb := s.register(1, g)
	if got := g.Value(); got != 2 {
		t.Fatalf("active-queries gauge = %d, want 2", got)
	}

	var mu sync.Mutex
	var order []string
	record := func(tag string) scanTask {
		return scanTask{
			run: func() {
				mu.Lock()
				order = append(order, tag)
				mu.Unlock()
			},
			abort: func(error) {},
		}
	}
	// Park the single worker on a blocker so every later submission is
	// queued before anything runs; the pick order is then deterministic.
	gate := make(chan struct{})
	running := make(chan struct{})
	qa.submit(scanTask{run: func() { close(running); <-gate }, abort: func(error) {}})
	<-running
	for _, tag := range []string{"a1", "a2", "a3"} {
		qa.submit(record(tag))
	}
	for _, tag := range []string{"b1", "b2"} {
		qb.submit(record(tag))
	}
	close(gate)

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 5 tasks ran", n)
		}
		time.Sleep(time.Millisecond)
	}
	// Round-robin from the blocker's queue: b1 a1 b2 a2 a3.
	want := []string{"b1", "a1", "b2", "a2", "a3"}
	for i, tag := range want {
		if order[i] != tag {
			t.Fatalf("execution order = %v, want %v (heavy queue A must not starve B)", order, want)
		}
	}
	qa.close()
	qb.close()
	if got := g.Value(); got != 0 {
		t.Errorf("active-queries gauge = %d after close, want 0", got)
	}
}

// TestSchedulerQueueCloseDropsPendingWaitsInflight checks the two close
// guarantees the scanner relies on: pending tasks never run after close,
// and close blocks until in-flight tasks finish (their stats merges must
// land before env.finish).
func TestSchedulerQueueCloseDropsPendingWaitsInflight(t *testing.T) {
	s := newScanScheduler() // vet-concurrency:allow unit test constructs the scheduler directly
	defer s.close()
	q := s.register(1, nil)

	gate := make(chan struct{})
	running := make(chan struct{})
	var ran, dropped int
	var mu sync.Mutex
	q.submit(scanTask{run: func() {
		close(running)
		<-gate
		mu.Lock()
		ran++
		mu.Unlock()
	}, abort: func(error) {}})
	q.submit(scanTask{run: func() { mu.Lock(); ran++; mu.Unlock() }, abort: func(error) { mu.Lock(); dropped++; mu.Unlock() }})
	<-running

	closed := make(chan int)
	go func() { closed <- q.close() }()
	select {
	case <-closed:
		t.Fatal("queue close returned while a task was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	n := <-closed
	mu.Lock()
	defer mu.Unlock()
	if ran != 1 {
		t.Errorf("ran = %d, want 1 (pending task must not run after close)", ran)
	}
	if n != 1 {
		t.Errorf("close dropped %d tasks, want 1", n)
	}
	if q.submit(scanTask{run: func() {}, abort: func(error) {}}) {
		t.Error("submit on a closed queue must report false")
	}
}

// TestSchedulerCloseAbortsPending checks node shutdown: tasks still
// queued when the scheduler closes are aborted (their slots settle with
// an error) rather than silently dropped.
func TestSchedulerCloseAbortsPending(t *testing.T) {
	s := newScanScheduler() // vet-concurrency:allow unit test constructs the scheduler directly
	q := s.register(1, nil)
	gate := make(chan struct{})
	running := make(chan struct{})
	q.submit(scanTask{run: func() { close(running); <-gate }, abort: func(error) {}})
	errs := make(chan error, 1)
	q.submit(scanTask{run: func() { errs <- nil }, abort: func(err error) { errs <- err }})
	<-running
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate) // let the in-flight blocker finish so close can join workers
	}()
	s.close()
	select {
	case err := <-errs:
		if !errors.Is(err, errSchedulerClosed) {
			t.Fatalf("pending task settled with %v, want errSchedulerClosed", err)
		}
	default:
		t.Fatal("pending task neither ran nor aborted after scheduler close")
	}
}
