package ocsserver

import (
	"fmt"
	"testing"

	"prestocs/internal/cache"
	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/expr"
	"prestocs/internal/objstore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

// sweepRows is sized so the object has 64 row groups of 2048 rows: a
// predicate selecting k% of the clustered key column touches ~k% of the
// groups, which is what the pruned/unpruned comparison measures.
const (
	sweepRows      = 64 * 2048
	sweepGroupSize = 2048
)

func sweepSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "v0", Type: types.Float64},
		types.Column{Name: "v1", Type: types.Float64},
		types.Column{Name: "v2", Type: types.Float64},
	)
}

func sweepObject(b *testing.B) []byte {
	b.Helper()
	schema := sweepSchema()
	page := column.NewPage(schema)
	for i := 0; i < sweepRows; i++ {
		page.AppendRow(
			types.IntValue(int64(i)), // clustered: each row group covers a tight id range
			types.FloatValue(float64(i)*0.5),
			types.FloatValue(float64(i%97)),
			types.FloatValue(float64(i%13)),
		)
	}
	img, err := parquetlite.WritePages(schema, parquetlite.WriterOptions{RowGroupSize: sweepGroupSize}, page)
	if err != nil {
		b.Fatal(err)
	}
	return img
}

// BenchmarkPruneSweep measures the zone-map win end to end on the
// storage executor: the same filtered scan with and without row-group
// pruning, at 0.1%, 1% and 10% selectivity over a clustered key. The
// pruned/1% case must beat unpruned by well over 2× — the acceptance
// bar for this optimization.
func BenchmarkPruneSweep(b *testing.B) {
	store := objstore.NewStore()
	store.Put("b", "sweep", sweepObject(b))
	for _, sel := range []float64{0.001, 0.01, 0.1} {
		hi := int64(float64(sweepRows) * sel)
		cond, err := expr.NewCompare(expr.Lt, expr.Col(0, "id", types.Int64), expr.Lit(types.IntValue(hi)))
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name    string
			noPrune bool
		}{{"pruned", false}, {"unpruned", true}} {
			b.Run(fmt.Sprintf("sel=%g%%/%s", sel*100, mode.name), func(b *testing.B) {
				var rows int
				for i := 0; i < b.N; i++ {
					read := &substrait.ReadRel{Bucket: "b", Object: "sweep", BaseSchema: sweepSchema()}
					plan := substrait.NewPlan(&substrait.FilterRel{Input: read, Condition: cond})
					pages, _, err := executeLocalPool(store, plan, 1, mode.noPrune, nil)
					if err != nil {
						b.Fatal(err)
					}
					rows = countRows(pages)
				}
				if int64(rows) != hi {
					b.Fatalf("result rows %d, want %d", rows, hi)
				}
				b.ReportMetric(float64(rows), "rows/query")
			})
		}
	}
}

// zstdSweepObject is sweepObject with zstd-compressed chunks, so a cache
// miss pays both the codec and the decode cost a hot page would skip.
func zstdSweepObject(b *testing.B) []byte {
	b.Helper()
	schema := sweepSchema()
	page := column.NewPage(schema)
	for i := 0; i < sweepRows; i++ {
		page.AppendRow(
			types.IntValue(int64(i)),
			types.FloatValue(float64(i)*0.5),
			types.FloatValue(float64(i%97)),
			types.FloatValue(float64(i%13)),
		)
	}
	img, err := parquetlite.WritePages(schema,
		parquetlite.WriterOptions{RowGroupSize: sweepGroupSize, Codec: compress.Zstd}, page)
	if err != nil {
		b.Fatal(err)
	}
	return img
}

// BenchmarkHotCache measures the caching tier's win on a repeated scan
// of one hot object: Cold re-decodes footer and every zstd column chunk
// each iteration (nil caches, the pre-PR6 behavior); Hot serves decoded
// pages from a warmed footer+page cache. The acceptance bar is a ≥5×
// ns/op ratio, with bytes-decoded/op collapsing to ~0 on the hot path.
func BenchmarkHotCache(b *testing.B) {
	store := objstore.NewStore()
	store.Put("b", "hot", zstdSweepObject(b))
	cond, err := expr.NewCompare(expr.Ge, expr.Col(0, "id", types.Int64), expr.Lit(types.IntValue(0)))
	if err != nil {
		b.Fatal(err)
	}
	newPlan := func() *substrait.Plan {
		read := &substrait.ReadRel{Bucket: "b", Object: "hot", BaseSchema: sweepSchema()}
		return substrait.NewPlan(&substrait.FilterRel{Input: read, Condition: cond})
	}

	b.Run("cold", func(b *testing.B) {
		var decoded int64
		for i := 0; i < b.N; i++ {
			pages, stats, err := ExecuteLocalPool(store, newPlan(), 1)
			if err != nil {
				b.Fatal(err)
			}
			if countRows(pages) != sweepRows {
				b.Fatal("row count mismatch")
			}
			decoded = stats.BytesDecompressed
		}
		b.ReportMetric(float64(decoded), "bytes-decoded/op")
	})

	b.Run("hot", func(b *testing.B) {
		caches := cache.NewStorage(cache.DefaultFooterCacheBytes, cache.DefaultPageCacheBytes)
		// Warm outside the timed region: one cold pass populates footer
		// and page entries for every row group.
		if _, _, err := ExecuteLocalCached(store, newPlan(), 1, caches); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var decoded int64
		for i := 0; i < b.N; i++ {
			pages, stats, err := ExecuteLocalCached(store, newPlan(), 1, caches)
			if err != nil {
				b.Fatal(err)
			}
			if countRows(pages) != sweepRows {
				b.Fatal("row count mismatch")
			}
			decoded = stats.BytesDecompressed
		}
		b.ReportMetric(float64(decoded), "bytes-decoded/op")
	})
}
