package ocsserver

import (
	"context"
	"fmt"
	"io"
	"time"

	"prestocs/internal/arrowlite"
	"prestocs/internal/column"
	"prestocs/internal/objstore"
	"prestocs/internal/protowire"
	"prestocs/internal/retry"
	"prestocs/internal/rpc"
	"prestocs/internal/substrait"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// Client is the application-side handle to an OCS frontend. The
// Presto-OCS connector's PageSourceProvider holds one of these. All
// calls take a context: its deadline travels to the frontend (and on to
// the storage node) in the RPC frame header, and cancelling it abandons
// in-flight work and discards the connection. Transient failures —
// unreachable frontend, connection killed before the first result chunk
// — are retried under the client's retry policy.
type Client struct {
	rpc       *rpc.Client
	retry     retry.Policy
	chunkRows int
}

// Option configures a Client.
type Option func(*Client)

// WithDialTimeout bounds connection establishment to the frontend.
func WithDialTimeout(d time.Duration) Option {
	return func(c *Client) { c.rpc.DialTimeout = d }
}

// WithRetryPolicy replaces the default transient-failure retry policy.
// retry.None() disables retries.
func WithRetryPolicy(p retry.Policy) Option {
	return func(c *Client) { c.retry = p }
}

// WithChunkRows asks storage nodes to coalesce result chunks to at least
// n rows for this client's queries; 0 keeps the node's own default.
func WithChunkRows(n int) Option {
	return func(c *Client) { c.chunkRows = n }
}

// WithMetrics attaches a metrics registry to the client's transport, so
// per-method RPC latency, byte and pool counters are recorded. Tracing
// needs no option: the rpc client picks the tracer up from each call's
// context.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(c *Client) { c.rpc.Metrics = reg }
}

// NewClient dials an OCS frontend. With no options it behaves like the
// historical client plus a default retry policy.
func NewClient(addr string, opts ...Option) *Client {
	c := &Client{rpc: rpc.Dial(addr), retry: retry.Default()}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Close releases connections.
func (c *Client) Close() error { return c.rpc.Close() }

// Meter exposes the transport meter; the harness reads it as compute ↔
// OCS data movement.
func (c *Client) Meter() *rpc.Meter { return &c.rpc.Meter }

// IdleConns reports pooled connections; tests use it to check that
// cancelled streams discard rather than pool their connection.
func (c *Client) IdleConns() int { return c.rpc.IdleConns() }

// Execute request envelope fields. They are disjoint from Plan's
// top-level fields (1: version string, 2: root rel) so a bare marshalled
// plan — the pre-envelope wire format — is still recognized and served.
const (
	execReqPlanField      = 7
	execReqChunkRowsField = 8
)

// encodeExecuteRequest wraps a marshalled plan and the client's
// chunk-rows preference into an ocs.Execute payload.
func encodeExecuteRequest(planBytes []byte, chunkRows int) []byte {
	e := protowire.NewEncoder()
	e.Bytes(execReqPlanField, planBytes)
	if chunkRows > 0 {
		e.Int64(execReqChunkRowsField, int64(chunkRows))
	}
	return e.Encoded()
}

// decodeExecuteRequest splits an ocs.Execute payload into plan bytes and
// the requested chunk rows. Payloads without the envelope field are
// treated as a bare plan.
func decodeExecuteRequest(payload []byte) (planBytes []byte, chunkRows int) {
	d := protowire.NewDecoder(payload)
	var plan []byte
	var rows int64
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return payload, 0
		}
		switch f {
		case execReqPlanField:
			plan, err = d.Bytes()
		case execReqChunkRowsField:
			rows, err = d.Int64()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return payload, 0
		}
	}
	if plan == nil {
		return payload, 0
	}
	return plan, int(rows)
}

// Result is a decoded in-storage execution result.
type Result struct {
	Schema *types.Schema
	Pages  []*column.Page
	// Stats is the storage-side work the query performed.
	Stats objstore.WorkStats
	// ArrowBytes is the size of the serialized Arrow stream received.
	ArrowBytes int64
}

// ResultStream is an incremental in-storage execution result: the schema
// is available as soon as the first chunk lands, pages arrive one Next
// call at a time while the storage node is still scanning, and the work
// stats become available once Next returns io.EOF.
type ResultStream struct {
	cs     *rpc.ClientStream
	schema *types.Schema
	stats  objstore.WorkStats
	bytes  int64
	decode time.Duration
	load   uint32
	done   bool
}

// ExecuteStream marshals the plan, ships it to OCS and returns the result
// stream. The caller must drain it to io.EOF or Close it. Opening the
// stream — up to and including the schema chunk — is retried on transient
// failure; once the schema has landed, failures surface to the caller,
// who decides between retry and fallback.
func (c *Client) ExecuteStream(ctx context.Context, plan *substrait.Plan) (*ResultStream, error) {
	planBytes, err := substrait.Marshal(plan)
	if err != nil {
		return nil, err
	}
	payload := encodeExecuteRequest(planBytes, c.chunkRows)
	var rs *ResultStream
	err = c.retry.Do(ctx, func() error {
		cs, err := c.rpc.Stream(ctx, MethodExecute, payload)
		if err != nil {
			return err
		}
		// Chunk 0 is always the schema message.
		first, err := cs.Recv()
		if err != nil {
			cs.Close()
			if err == io.EOF {
				return retry.Permanent(fmt.Errorf("ocs: result stream ended before schema"))
			}
			return err
		}
		schema, err := arrowlite.DecodeSchemaMsg(first)
		if err != nil {
			cs.Close()
			return retry.Permanent(err)
		}
		rs = &ResultStream{cs: cs, schema: schema, bytes: int64(len(first)), load: cs.Load()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rs, nil
}

// Schema returns the result schema (available immediately).
func (rs *ResultStream) Schema() *types.Schema { return rs.schema }

// Next returns the next result page, or io.EOF once the stream ends
// cleanly, at which point Stats and ArrowBytes are final.
func (rs *ResultStream) Next() (*column.Page, error) {
	if rs.done {
		return nil, io.EOF
	}
	chunk, err := rs.cs.Recv()
	if err == io.EOF {
		rs.done = true
		rs.load = rs.cs.Load()
		if terr := rs.decodeTrailer(); terr != nil {
			return nil, terr
		}
		return nil, io.EOF
	}
	if err != nil {
		rs.done = true
		return nil, err
	}
	rs.load = rs.cs.Load()
	rs.bytes += int64(len(chunk))
	start := time.Now()
	page, err := arrowlite.DecodeBatchMsg(chunk, rs.schema)
	rs.decode += time.Since(start)
	return page, err
}

// DecodeTime is the cumulative wall time spent deserializing Arrow batch
// messages, a subset of the time Next calls take; the connector reports
// it as the arrow_deserialize stage of the scan span.
func (rs *ResultStream) DecodeTime() time.Duration { return rs.decode }

func (rs *ResultStream) decodeTrailer() error {
	_, stats, err := decodeBytesStats(rs.cs.Trailer(), 0, 1)
	if err != nil {
		return err
	}
	rs.stats = stats
	return nil
}

// decodeBytesStats decodes a protowire message holding an optional bytes
// field and an optional WorkStats sub-message; the stream trailer and the
// Get response share this shape (with different field numbers), so both
// decode through here.
func decodeBytesStats(payload []byte, dataField, statsField int) ([]byte, objstore.WorkStats, error) {
	d := protowire.NewDecoder(payload)
	var data []byte
	var stats objstore.WorkStats
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, stats, err
		}
		switch f {
		case dataField:
			data, err = d.Bytes()
		case statsField:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				stats, err = decodeWorkStats(m)
			}
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, stats, err
		}
	}
	return data, stats, nil
}

// Stats returns the storage-side work stats; final after Next returned
// io.EOF.
func (rs *ResultStream) Stats() objstore.WorkStats { return rs.stats }

// Load returns the storage node's scan backlog as carried by the most
// recent stream frame: the number of row-group tasks queued or running
// on the node-wide scheduler. It is the live storage-load signal the
// connector's adaptive pushdown policy feeds on.
func (rs *ResultStream) Load() uint32 { return rs.load }

// ArrowBytes returns the Arrow payload bytes received so far.
func (rs *ResultStream) ArrowBytes() int64 { return rs.bytes }

// TryDrain consumes the remainder of the stream within the given budget
// so the trailer — and with it the storage-side Stats — becomes final
// even when the caller stops early (a LIMIT satisfied mid-stream). It
// reports whether the clean end of stream was reached; drained chunk
// bytes count toward ArrowBytes since they did cross the network.
func (rs *ResultStream) TryDrain(maxChunks int, timeout time.Duration) bool {
	if rs.done {
		return true
	}
	n, ok := rs.cs.TryDrain(maxChunks, timeout)
	rs.bytes += n
	if !ok {
		return false
	}
	rs.done = true
	return rs.decodeTrailer() == nil
}

// Close releases the stream; if it has not been drained the underlying
// connection is discarded.
func (rs *ResultStream) Close() error {
	rs.done = true
	return rs.cs.Close()
}

// Execute runs a plan and buffers the whole result, draining the stream.
// Kept for callers that want the materialized form; the connector's page
// source consumes ExecuteStream directly.
func (c *Client) Execute(ctx context.Context, plan *substrait.Plan) (*Result, error) {
	rs, err := c.ExecuteStream(ctx, plan)
	if err != nil {
		return nil, err
	}
	defer rs.Close()
	var pages []*column.Page
	for {
		page, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		pages = append(pages, page)
	}
	return &Result{Schema: rs.Schema(), Pages: pages, Stats: rs.Stats(), ArrowBytes: rs.ArrowBytes()}, nil
}

// Put uploads an object through the frontend, retrying transient
// transport failures.
func (c *Client) Put(ctx context.Context, bucket, key string, data []byte) error {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, key)
	e.Bytes(3, data)
	payload := e.Encoded()
	return c.retry.Do(ctx, func() error {
		_, err := c.rpc.Call(ctx, MethodPut, payload)
		return err
	})
}

// Delete removes an object. Idempotent end to end — deleting a missing
// key succeeds — so the compactor's garbage collection can retry safely
// across killed connections.
func (c *Client) Delete(ctx context.Context, bucket, key string) error {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, key)
	payload := e.Encoded()
	return c.retry.Do(ctx, func() error {
		_, err := c.rpc.Call(ctx, MethodDelete, payload)
		return err
	})
}

// Get downloads a whole object (the no-pushdown path).
func (c *Client) Get(ctx context.Context, bucket, key string) ([]byte, objstore.WorkStats, error) {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, key)
	payload := e.Encoded()
	var data []byte
	var stats objstore.WorkStats
	err := c.retry.Do(ctx, func() error {
		resp, err := c.rpc.Call(ctx, MethodGet, payload)
		if err != nil {
			return err
		}
		data, stats, err = decodeBytesStats(resp, 1, 2)
		return err
	})
	if err != nil {
		return nil, stats, err
	}
	return data, stats, nil
}

// List returns all keys with the prefix across storage nodes.
func (c *Client) List(ctx context.Context, bucket, prefix string) ([]string, error) {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, prefix)
	payload := e.Encoded()
	var keys []string
	err := c.retry.Do(ctx, func() error {
		resp, err := c.rpc.Call(ctx, MethodList, payload)
		if err != nil {
			return err
		}
		keys = keys[:0]
		d := protowire.NewDecoder(resp)
		for !d.Done() {
			f, ty, err := d.Next()
			if err != nil {
				return err
			}
			if f != 1 {
				if err := d.Skip(ty); err != nil {
					return err
				}
				continue
			}
			k, err := d.String()
			if err != nil {
				return err
			}
			keys = append(keys, k)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return keys, nil
}

// Cluster bundles an in-process OCS deployment: storage nodes plus a
// frontend, all listening on loopback TCP. Tests, examples and the
// experiment harness use it to stand up the full distributed topology.
type Cluster struct {
	Nodes    []*StorageNode
	Front    *Frontend
	Addr     string // frontend address
	NodeAddr []string

	// Metrics is the shared registry all components write into (nil when
	// the cluster was started without telemetry); Tracers maps component
	// labels ("frontend", "node0", ...) to their tracers, ready for
	// telemetry.NewMux.
	Metrics *telemetry.Registry
	Tracers map[string]*telemetry.Tracer
}

// ClusterConfig configures telemetry for an in-process cluster.
type ClusterConfig struct {
	// Metrics, when non-nil, receives transport, chunk and scan-pool
	// metrics from every component.
	Metrics *telemetry.Registry
	// Tracing gives every component its own tracer so a query's trace
	// connects across the frontend and all storage nodes.
	Tracing bool
	// ScanPool sizes each node's scan-scheduler worker pool (0 = the
	// cost-model storage-node core count).
	ScanPool int
	// StreamWindow sets the per-stream credit window on every node and
	// the frontend (0 = rpc.DefaultStreamWindow, negative disables).
	StreamWindow int
	// MaxBloomBytes caps pushed bloom-filter sizes on every node
	// (0 = DefaultMaxBloomBytes, negative disables the cap).
	MaxBloomBytes int
}

// StartCluster launches n storage nodes and a frontend on loopback.
func StartCluster(n int) (*Cluster, error) {
	return StartClusterWith(n, ClusterConfig{})
}

// StartClusterWith is StartCluster with telemetry wiring: every component
// shares cfg.Metrics, and with cfg.Tracing each gets its own tracer,
// exposed in Cluster.Tracers.
func StartClusterWith(n int, cfg ClusterConfig) (*Cluster, error) {
	c := &Cluster{Metrics: cfg.Metrics, Tracers: map[string]*telemetry.Tracer{}}
	for i := 0; i < n; i++ {
		node := NewStorageNode(i)
		node.Metrics = cfg.Metrics
		node.ScanPool = cfg.ScanPool
		node.StreamWindow = cfg.StreamWindow
		node.MaxBloomBytes = cfg.MaxBloomBytes
		if cfg.Tracing {
			node.Tracer = telemetry.NewTracer(0)
			c.Tracers[node.nodeLabel()] = node.Tracer
		}
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
		c.NodeAddr = append(c.NodeAddr, addr)
	}
	front, err := NewFrontend(c.NodeAddr)
	if err != nil {
		c.Shutdown()
		return nil, err
	}
	front.Metrics = cfg.Metrics
	front.StreamWindow = cfg.StreamWindow
	if cfg.Tracing {
		front.Tracer = telemetry.NewTracer(0)
		c.Tracers["frontend"] = front.Tracer
	}
	c.Front = front
	addr, err := c.Front.Listen("127.0.0.1:0")
	if err != nil {
		c.Shutdown()
		return nil, err
	}
	c.Addr = addr
	return c, nil
}

// Shutdown stops the frontend and all nodes.
func (c *Cluster) Shutdown() {
	if c.Front != nil {
		c.Front.Close()
	}
	for _, n := range c.Nodes {
		n.Close()
	}
}
