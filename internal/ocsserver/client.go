package ocsserver

import (
	"prestocs/internal/arrowlite"
	"prestocs/internal/column"
	"prestocs/internal/objstore"
	"prestocs/internal/protowire"
	"prestocs/internal/rpc"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

// Client is the application-side handle to an OCS frontend. The
// Presto-OCS connector's PageSourceProvider holds one of these.
type Client struct {
	rpc *rpc.Client
}

// NewClient dials an OCS frontend.
func NewClient(addr string) *Client { return &Client{rpc: rpc.Dial(addr)} }

// Close releases connections.
func (c *Client) Close() error { return c.rpc.Close() }

// Meter exposes the transport meter; the harness reads it as compute ↔
// OCS data movement.
func (c *Client) Meter() *rpc.Meter { return &c.rpc.Meter }

// Result is a decoded in-storage execution result.
type Result struct {
	Schema *types.Schema
	Pages  []*column.Page
	// Stats is the storage-side work the query performed.
	Stats objstore.WorkStats
	// ArrowBytes is the size of the serialized Arrow stream received.
	ArrowBytes int64
}

// Execute marshals the plan, ships it to OCS and decodes the Arrow
// result.
func (c *Client) Execute(plan *substrait.Plan) (*Result, error) {
	payload, err := substrait.Marshal(plan)
	if err != nil {
		return nil, err
	}
	resp, err := c.rpc.Call(MethodExecute, payload)
	if err != nil {
		return nil, err
	}
	d := protowire.NewDecoder(resp)
	var arrow []byte
	var stats objstore.WorkStats
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			arrow, err = d.Bytes()
		case 2:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				stats, err = decodeWorkStats(m)
			}
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, err
		}
	}
	schema, pages, err := arrowlite.Deserialize(arrow)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: schema, Pages: pages, Stats: stats, ArrowBytes: int64(len(arrow))}, nil
}

// Put uploads an object through the frontend.
func (c *Client) Put(bucket, key string, data []byte) error {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, key)
	e.Bytes(3, data)
	_, err := c.rpc.Call(MethodPut, e.Encoded())
	return err
}

// Get downloads a whole object (the no-pushdown path).
func (c *Client) Get(bucket, key string) ([]byte, objstore.WorkStats, error) {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, key)
	resp, err := c.rpc.Call(MethodGet, e.Encoded())
	if err != nil {
		return nil, objstore.WorkStats{}, err
	}
	d := protowire.NewDecoder(resp)
	var data []byte
	var stats objstore.WorkStats
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, stats, err
		}
		switch f {
		case 1:
			data, err = d.Bytes()
		case 2:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				stats, err = decodeWorkStats(m)
			}
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, stats, err
		}
	}
	return data, stats, nil
}

// List returns all keys with the prefix across storage nodes.
func (c *Client) List(bucket, prefix string) ([]string, error) {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, prefix)
	resp, err := c.rpc.Call(MethodList, e.Encoded())
	if err != nil {
		return nil, err
	}
	d := protowire.NewDecoder(resp)
	var keys []string
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		if f != 1 {
			if err := d.Skip(ty); err != nil {
				return nil, err
			}
			continue
		}
		k, err := d.String()
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
	}
	return keys, nil
}

// Cluster bundles an in-process OCS deployment: storage nodes plus a
// frontend, all listening on loopback TCP. Tests, examples and the
// experiment harness use it to stand up the full distributed topology.
type Cluster struct {
	Nodes    []*StorageNode
	Front    *Frontend
	Addr     string // frontend address
	NodeAddr []string
}

// StartCluster launches n storage nodes and a frontend on loopback.
func StartCluster(n int) (*Cluster, error) {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		node := NewStorageNode(i)
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
		c.NodeAddr = append(c.NodeAddr, addr)
	}
	c.Front = NewFrontend(c.NodeAddr)
	addr, err := c.Front.Listen("127.0.0.1:0")
	if err != nil {
		c.Shutdown()
		return nil, err
	}
	c.Addr = addr
	return c, nil
}

// Shutdown stops the frontend and all nodes.
func (c *Cluster) Shutdown() {
	if c.Front != nil {
		c.Front.Close()
	}
	for _, n := range c.Nodes {
		n.Close()
	}
}
