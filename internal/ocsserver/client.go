package ocsserver

import (
	"fmt"
	"io"

	"prestocs/internal/arrowlite"
	"prestocs/internal/column"
	"prestocs/internal/objstore"
	"prestocs/internal/protowire"
	"prestocs/internal/rpc"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

// Client is the application-side handle to an OCS frontend. The
// Presto-OCS connector's PageSourceProvider holds one of these.
type Client struct {
	rpc *rpc.Client
}

// NewClient dials an OCS frontend.
func NewClient(addr string) *Client { return &Client{rpc: rpc.Dial(addr)} }

// Close releases connections.
func (c *Client) Close() error { return c.rpc.Close() }

// Meter exposes the transport meter; the harness reads it as compute ↔
// OCS data movement.
func (c *Client) Meter() *rpc.Meter { return &c.rpc.Meter }

// Result is a decoded in-storage execution result.
type Result struct {
	Schema *types.Schema
	Pages  []*column.Page
	// Stats is the storage-side work the query performed.
	Stats objstore.WorkStats
	// ArrowBytes is the size of the serialized Arrow stream received.
	ArrowBytes int64
}

// ResultStream is an incremental in-storage execution result: the schema
// is available as soon as the first chunk lands, pages arrive one Next
// call at a time while the storage node is still scanning, and the work
// stats become available once Next returns io.EOF.
type ResultStream struct {
	cs     *rpc.ClientStream
	schema *types.Schema
	stats  objstore.WorkStats
	bytes  int64
	done   bool
}

// ExecuteStream marshals the plan, ships it to OCS and returns the result
// stream. The caller must drain it to io.EOF or Close it.
func (c *Client) ExecuteStream(plan *substrait.Plan) (*ResultStream, error) {
	payload, err := substrait.Marshal(plan)
	if err != nil {
		return nil, err
	}
	cs, err := c.rpc.Stream(MethodExecute, payload)
	if err != nil {
		return nil, err
	}
	// Chunk 0 is always the schema message.
	first, err := cs.Recv()
	if err != nil {
		cs.Close()
		if err == io.EOF {
			return nil, fmt.Errorf("ocs: result stream ended before schema")
		}
		return nil, err
	}
	schema, err := arrowlite.DecodeSchemaMsg(first)
	if err != nil {
		cs.Close()
		return nil, err
	}
	return &ResultStream{cs: cs, schema: schema, bytes: int64(len(first))}, nil
}

// Schema returns the result schema (available immediately).
func (rs *ResultStream) Schema() *types.Schema { return rs.schema }

// Next returns the next result page, or io.EOF once the stream ends
// cleanly, at which point Stats and ArrowBytes are final.
func (rs *ResultStream) Next() (*column.Page, error) {
	if rs.done {
		return nil, io.EOF
	}
	chunk, err := rs.cs.Recv()
	if err == io.EOF {
		rs.done = true
		if terr := rs.decodeTrailer(); terr != nil {
			return nil, terr
		}
		return nil, io.EOF
	}
	if err != nil {
		rs.done = true
		return nil, err
	}
	rs.bytes += int64(len(chunk))
	return arrowlite.DecodeBatchMsg(chunk, rs.schema)
}

func (rs *ResultStream) decodeTrailer() error {
	d := protowire.NewDecoder(rs.cs.Trailer())
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return err
		}
		switch f {
		case 1:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				rs.stats, err = decodeWorkStats(m)
			}
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats returns the storage-side work stats; final after Next returned
// io.EOF.
func (rs *ResultStream) Stats() objstore.WorkStats { return rs.stats }

// ArrowBytes returns the Arrow payload bytes received so far.
func (rs *ResultStream) ArrowBytes() int64 { return rs.bytes }

// Close releases the stream; if it has not been drained the underlying
// connection is discarded.
func (rs *ResultStream) Close() error {
	rs.done = true
	return rs.cs.Close()
}

// Execute runs a plan and buffers the whole result, draining the stream.
// Kept for callers that want the materialized form; the connector's page
// source consumes ExecuteStream directly.
func (c *Client) Execute(plan *substrait.Plan) (*Result, error) {
	rs, err := c.ExecuteStream(plan)
	if err != nil {
		return nil, err
	}
	defer rs.Close()
	var pages []*column.Page
	for {
		page, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		pages = append(pages, page)
	}
	return &Result{Schema: rs.Schema(), Pages: pages, Stats: rs.Stats(), ArrowBytes: rs.ArrowBytes()}, nil
}

// Put uploads an object through the frontend.
func (c *Client) Put(bucket, key string, data []byte) error {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, key)
	e.Bytes(3, data)
	_, err := c.rpc.Call(MethodPut, e.Encoded())
	return err
}

// Get downloads a whole object (the no-pushdown path).
func (c *Client) Get(bucket, key string) ([]byte, objstore.WorkStats, error) {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, key)
	resp, err := c.rpc.Call(MethodGet, e.Encoded())
	if err != nil {
		return nil, objstore.WorkStats{}, err
	}
	d := protowire.NewDecoder(resp)
	var data []byte
	var stats objstore.WorkStats
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, stats, err
		}
		switch f {
		case 1:
			data, err = d.Bytes()
		case 2:
			var m *protowire.Decoder
			m, err = d.Message()
			if err == nil {
				stats, err = decodeWorkStats(m)
			}
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, stats, err
		}
	}
	return data, stats, nil
}

// List returns all keys with the prefix across storage nodes.
func (c *Client) List(bucket, prefix string) ([]string, error) {
	e := protowire.NewEncoder()
	e.String(1, bucket)
	e.String(2, prefix)
	resp, err := c.rpc.Call(MethodList, e.Encoded())
	if err != nil {
		return nil, err
	}
	d := protowire.NewDecoder(resp)
	var keys []string
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		if f != 1 {
			if err := d.Skip(ty); err != nil {
				return nil, err
			}
			continue
		}
		k, err := d.String()
		if err != nil {
			return nil, err
		}
		keys = append(keys, k)
	}
	return keys, nil
}

// Cluster bundles an in-process OCS deployment: storage nodes plus a
// frontend, all listening on loopback TCP. Tests, examples and the
// experiment harness use it to stand up the full distributed topology.
type Cluster struct {
	Nodes    []*StorageNode
	Front    *Frontend
	Addr     string // frontend address
	NodeAddr []string
}

// StartCluster launches n storage nodes and a frontend on loopback.
func StartCluster(n int) (*Cluster, error) {
	c := &Cluster{}
	for i := 0; i < n; i++ {
		node := NewStorageNode(i)
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			c.Shutdown()
			return nil, err
		}
		c.Nodes = append(c.Nodes, node)
		c.NodeAddr = append(c.NodeAddr, addr)
	}
	front, err := NewFrontend(c.NodeAddr)
	if err != nil {
		c.Shutdown()
		return nil, err
	}
	c.Front = front
	addr, err := c.Front.Listen("127.0.0.1:0")
	if err != nil {
		c.Shutdown()
		return nil, err
	}
	c.Addr = addr
	return c, nil
}

// Shutdown stops the frontend and all nodes.
func (c *Cluster) Shutdown() {
	if c.Front != nil {
		c.Front.Close()
	}
	for _, n := range c.Nodes {
		n.Close()
	}
}
