package ocsserver

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/exec"
	"prestocs/internal/expr"
	"prestocs/internal/objstore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

func meshSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "vertex_id", Type: types.Int64},
		types.Column{Name: "x", Type: types.Float64},
		types.Column{Name: "e", Type: types.Float64},
	)
}

// meshObject builds a deterministic object: 200 rows, vertex_id = i%10,
// x = i/100.0, e = i.
func meshObject(t *testing.T, codec compress.Codec) []byte {
	t.Helper()
	p := column.NewPage(meshSchema())
	for i := 0; i < 200; i++ {
		p.AppendRow(
			types.IntValue(int64(i%10)),
			types.FloatValue(float64(i)/100),
			types.FloatValue(float64(i)),
		)
	}
	data, err := parquetlite.WritePages(meshSchema(), parquetlite.WriterOptions{Codec: codec, RowGroupSize: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func filterPlan(t *testing.T, bucket, object string) *substrait.Plan {
	t.Helper()
	read := &substrait.ReadRel{Bucket: bucket, Object: object, BaseSchema: meshSchema()}
	cond, err := expr.NewBetween(expr.Col(1, "x", types.Float64),
		expr.Lit(types.FloatValue(0.5)), expr.Lit(types.FloatValue(1.0)))
	if err != nil {
		t.Fatal(err)
	}
	return substrait.NewPlan(&substrait.FilterRel{Input: read, Condition: cond})
}

func TestExecuteLocalFilter(t *testing.T) {
	store := objstore.NewStore()
	store.Put("b", "o", meshObject(t, compress.None))
	pages, stats, err := ExecuteLocal(store, filterPlan(t, "b", "o"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range pages {
		total += p.NumRows()
	}
	// x in [0.5, 1.0] -> i in [50,100] -> 51 rows.
	if total != 51 {
		t.Errorf("filtered rows = %d, want 51", total)
	}
	if stats.BytesRead <= 0 || stats.RowsProcessed <= 0 || stats.CPUUnits <= 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
}

func TestExecuteLocalRowGroupPruning(t *testing.T) {
	store := objstore.NewStore()
	store.Put("b", "o", meshObject(t, compress.None))
	// x BETWEEN 0.5 AND 1.0 hits row groups 0 (rows 0-63) and 1 (64-127)
	// only; groups 2,3 must be pruned, reducing BytesRead.
	_, statsPruned, err := ExecuteLocal(store, filterPlan(t, "b", "o"))
	if err != nil {
		t.Fatal(err)
	}
	// An always-true filter reads everything.
	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: meshSchema()}
	cond, _ := expr.NewCompare(expr.Ge, expr.Col(1, "x", types.Float64), expr.Lit(types.FloatValue(-1)))
	_, statsFull, err := ExecuteLocal(store, substrait.NewPlan(&substrait.FilterRel{Input: read, Condition: cond}))
	if err != nil {
		t.Fatal(err)
	}
	if statsPruned.BytesRead >= statsFull.BytesRead {
		t.Errorf("pruning did not reduce reads: %d vs %d", statsPruned.BytesRead, statsFull.BytesRead)
	}
}

func TestExecuteLocalAggregatePartial(t *testing.T) {
	store := objstore.NewStore()
	store.Put("b", "o", meshObject(t, compress.Snappy))
	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: meshSchema()}
	agg := &substrait.AggregateRel{
		Input:     read,
		GroupKeys: []int{0},
		Measures: []substrait.Measure{
			{Func: substrait.AggSum, Arg: 2, Name: "sum_e"},
			{Func: substrait.AggCountStar, Arg: -1, Name: "cnt"},
		},
	}
	pages, stats, err := ExecuteLocal(store, substrait.NewPlan(agg))
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 || pages[0].NumRows() != 10 {
		t.Fatalf("groups = %v", pages)
	}
	// Each vertex_id group has 20 rows; counts must say so.
	for i := 0; i < pages[0].NumRows(); i++ {
		if pages[0].Row(i)[2].I != 20 {
			t.Errorf("group %d count = %v", i, pages[0].Row(i)[2])
		}
	}
	if stats.BytesDecompressed <= stats.BytesRead {
		t.Errorf("snappy object should decompress larger: read=%d dec=%d", stats.BytesRead, stats.BytesDecompressed)
	}
}

func TestExecuteLocalTopNAndProject(t *testing.T) {
	store := objstore.NewStore()
	store.Put("b", "o", meshObject(t, compress.None))
	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: meshSchema()}
	mod, err := expr.NewArith(expr.Mod, expr.Col(0, "vertex_id", types.Int64), expr.Lit(types.IntValue(3)))
	if err != nil {
		t.Fatal(err)
	}
	proj := &substrait.ProjectRel{
		Input:       read,
		Expressions: []expr.Expr{mod, expr.Col(2, "e", types.Float64)},
		Names:       []string{"m", "e"},
	}
	topn := &substrait.FetchRel{
		Input: &substrait.SortRel{Input: proj, Keys: []substrait.SortKey{{Column: 1, Descending: true}}},
		Count: 5,
	}
	pages, _, err := ExecuteLocal(store, substrait.NewPlan(topn))
	if err != nil {
		t.Fatal(err)
	}
	out := column.NewPage(pages[0].Schema)
	for _, p := range pages {
		out.AppendPage(p)
	}
	if out.NumRows() != 5 {
		t.Fatalf("topN rows = %d", out.NumRows())
	}
	if out.Row(0)[1].F != 199 || out.Row(4)[1].F != 195 {
		t.Errorf("topN values: %v ... %v", out.Row(0)[1], out.Row(4)[1])
	}
}

func TestExecuteLocalBareFetch(t *testing.T) {
	store := objstore.NewStore()
	store.Put("b", "o", meshObject(t, compress.None))
	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: meshSchema()}
	pages, _, err := ExecuteLocal(store, substrait.NewPlan(&substrait.FetchRel{Input: read, Count: 7}))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range pages {
		total += p.NumRows()
	}
	if total != 7 {
		t.Errorf("limit rows = %d", total)
	}
}

func TestExecuteLocalErrors(t *testing.T) {
	store := objstore.NewStore()
	store.Put("b", "corrupt", []byte("nope"))
	if _, _, err := ExecuteLocal(store, filterPlan(t, "b", "missing")); err == nil {
		t.Error("missing object accepted")
	}
	if _, _, err := ExecuteLocal(store, filterPlan(t, "b", "corrupt")); err == nil {
		t.Error("corrupt object accepted")
	}
	// Schema mismatch between plan and object.
	store.Put("b", "o", meshObject(t, compress.None))
	wrongSchema := types.NewSchema(types.Column{Name: "other", Type: types.Int64})
	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: wrongSchema}
	cond, _ := expr.NewCompare(expr.Gt, expr.Col(0, "other", types.Int64), expr.Lit(types.IntValue(0)))
	if _, _, err := ExecuteLocal(store, substrait.NewPlan(&substrait.FilterRel{Input: read, Condition: cond})); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func startCluster(t *testing.T, n int) (*Cluster, *Client) {
	t.Helper()
	cluster, err := StartCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(cluster.Addr)
	t.Cleanup(func() {
		cli.Close()
		cluster.Shutdown()
	})
	return cluster, cli
}

func TestClusterExecute(t *testing.T) {
	_, cli := startCluster(t, 1)
	if err := cli.Put(context.Background(), "b", "o", meshObject(t, compress.None)); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Execute(context.Background(), filterPlan(t, "b", "o"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pages {
		total += p.NumRows()
	}
	if total != 51 {
		t.Errorf("cluster filter rows = %d", total)
	}
	if res.ArrowBytes <= 0 || res.Stats.RowsProcessed <= 0 {
		t.Errorf("result metadata missing: %+v", res)
	}
	if res.Schema.IndexOf("x") < 0 {
		t.Errorf("result schema = %v", res.Schema)
	}
}

func TestClusterMultiNodePlacement(t *testing.T) {
	cluster, cli := startCluster(t, 3)
	// Spread 12 objects; every node should get some.
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("part-%03d.pql", i)
		if err := cli.Put(context.Background(), "lanl", key, meshObject(t, compress.None)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := cli.List(context.Background(), "lanl", "part-")
	if err != nil || len(keys) != 12 {
		t.Fatalf("List = %d keys, %v", len(keys), err)
	}
	nonEmpty := 0
	for _, node := range cluster.Nodes {
		if ks, err := node.Store().List("lanl", ""); err == nil && len(ks) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("placement not spread: %d/3 nodes hold objects", nonEmpty)
	}
	// Execute against an object on whichever node holds it.
	res, err := cli.Execute(context.Background(), filterPlan(t, "lanl", "part-007.pql"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pages) == 0 {
		t.Error("no pages returned")
	}
	// Get routes correctly too.
	data, st, err := cli.Get(context.Background(), "lanl", "part-003.pql")
	if err != nil || len(data) == 0 || st.BytesRead != int64(len(data)) {
		t.Errorf("routed Get failed: %d bytes, %v", len(data), err)
	}
}

func TestClusterExecuteErrors(t *testing.T) {
	_, cli := startCluster(t, 1)
	if _, err := cli.Execute(context.Background(), filterPlan(t, "b", "missing")); err == nil {
		t.Error("execute against missing object succeeded")
	}
	// Plan with no read rel is rejected by the frontend... cannot build
	// one through the typed API; instead check invalid plan bytes via a
	// raw call: covered by substrait tests. Here: frontend rejects a Get
	// without bucket/key.
	if _, _, err := cli.Get(context.Background(), "", ""); err == nil {
		t.Error("empty get accepted")
	}
}

// The load-bearing invariant: OCS in-storage execution returns the same
// rows as reading the whole object and executing the same operators
// compute-side.
func TestInStorageEqualsLocalExecution(t *testing.T) {
	_, cli := startCluster(t, 1)
	obj := meshObject(t, compress.Gzip)
	if err := cli.Put(context.Background(), "b", "o", obj); err != nil {
		t.Fatal(err)
	}

	plan := filterPlan(t, "b", "o")
	res, err := cli.Execute(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	got := column.NewPage(res.Schema)
	for _, p := range res.Pages {
		got.AppendPage(p)
	}

	// Compute-side: full GET + local scan + same filter.
	data, _, err := cli.Get(context.Background(), "b", "o")
	if err != nil {
		t.Fatal(err)
	}
	r, err := parquetlite.NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := r.ReadAll([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	cond := plan.Root.(*substrait.FilterRel).Condition
	f, err := exec.NewFilter(exec.NewPageSource(meshSchema(), pages), cond, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exec.DrainToPage(f)
	if err != nil {
		t.Fatal(err)
	}

	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows: %d vs %d", got.NumRows(), want.NumRows())
	}
	for i := 0; i < got.NumRows(); i++ {
		for c := range got.Row(i) {
			if !types.Equal(got.Row(i)[c], want.Row(i)[c]) {
				t.Errorf("row %d col %d: %v vs %v", i, c, got.Row(i)[c], want.Row(i)[c])
			}
		}
	}
}

func TestFrontendRejectsGarbagePlan(t *testing.T) {
	cluster, err := StartCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()
	raw := NewClient(cluster.Addr)
	defer raw.Close()
	// Call Execute with garbage payload through the raw rpc client.
	_, err = raw.rpc.Call(context.Background(), MethodExecute, []byte{0xde, 0xad})
	if err == nil || !strings.Contains(err.Error(), "rejecting plan") {
		t.Errorf("garbage plan error = %v", err)
	}
}
