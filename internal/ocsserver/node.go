package ocsserver

import (
	"context"
	"fmt"
	"sync"

	"prestocs/internal/arrowlite"
	"prestocs/internal/cache"
	"prestocs/internal/column"
	"prestocs/internal/objstore"
	"prestocs/internal/protowire"
	"prestocs/internal/rpc"
	"prestocs/internal/substrait"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// RPC methods exposed by a storage node (frontend-facing).
const (
	NodeMethodExecute = "ocsnode.Execute"
	NodeMethodPut     = "ocsnode.Put"
	NodeMethodGet     = "ocsnode.Get"
	NodeMethodList    = "ocsnode.List"
	NodeMethodDelete  = "ocsnode.Delete"
)

// StorageNode holds objects and executes Substrait plans with the
// embedded SQL engine. In the paper this is the resource-constrained
// 16-core node; the cost model prices the WorkStats it reports with that
// profile.
type StorageNode struct {
	ID    int
	store *objstore.Store
	rpc   *rpc.Server

	// ScanPool sizes the row-group scan worker pool; 0 selects the
	// cost-model storage-node core count, 1 forces sequential scans.
	// Set before the first query.
	ScanPool int
	// ChunkRows coalesces result pages until a stream chunk carries at
	// least this many rows; 0 streams one Arrow batch per row group.
	// Clients may override per query via the execute-request envelope.
	// Set before the first query.
	ChunkRows int
	// StreamWindow bounds unacknowledged stream chunks per query (the
	// credit window): a slow reader stalls the producer after this many
	// chunks instead of buffering the scan in node memory. 0 selects
	// rpc.DefaultStreamWindow, negative disables backpressure. Set
	// before Listen.
	StreamWindow int

	// Metrics receives transport, chunk-throughput and scan-pool metrics;
	// Tracer continues traces arriving in request headers, covering the
	// node's execute handler and per-row-group scans. Both are optional
	// and must be set before Listen.
	Metrics *telemetry.Registry
	Tracer  *telemetry.Tracer

	// Caches holds the node's footer and hot-page caches (DESIGN.md §6).
	// NewStorageNode installs defaults; replace (or nil out) before the
	// first query to resize or disable. Listen binds its counters to
	// Metrics under this node's label.
	Caches *cache.Storage

	// MaxBloomBytes caps the bloom-filter bit arrays a pushed plan may
	// attach (per BloomFilterRel). Oversize filters are refused with an
	// invalid-plan error — the engine strips the filter and retries rather
	// than shipping megabytes of bits to every split. 0 selects
	// DefaultMaxBloomBytes; negative disables the cap. Set before Listen.
	MaxBloomBytes int

	// sched is the node-wide fair-share scan scheduler: one worker pool
	// (sized by the first query's resolved ScanPool) round-robining
	// row-group tasks across all active queries, so a heavy scan cannot
	// starve small selective ones.
	sched *scanScheduler

	faultMu   sync.Mutex
	execFault error
}

// SetExecuteFault injects err as the outcome of every subsequent Execute
// call until cleared with nil. It simulates the computational unit of an
// OCS node being down while the object path (Put/Get/List) stays healthy
// — the degradation scenario where the engine must fall back to the
// paper's no-pushdown configuration.
func (n *StorageNode) SetExecuteFault(err error) {
	n.faultMu.Lock()
	n.execFault = err
	n.faultMu.Unlock()
}

func (n *StorageNode) executeFault() error {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	return n.execFault
}

// NewStorageNode creates a node with an empty store and default-sized
// footer and hot-page caches.
func NewStorageNode(id int) *StorageNode {
	n := &StorageNode{
		ID:     id,
		store:  objstore.NewStore(),
		rpc:    rpc.NewServer(),
		Caches: cache.NewStorage(cache.DefaultFooterCacheBytes, cache.DefaultPageCacheBytes),
		sched:  newScanScheduler(), // vet-concurrency:allow the node-wide scheduler, shared by every query
	}
	n.rpc.RegisterStream(NodeMethodExecute, n.handleExecute)
	n.rpc.Register(NodeMethodPut, n.handlePut)
	n.rpc.Register(NodeMethodGet, n.handleGet)
	n.rpc.Register(NodeMethodList, n.handleList)
	n.rpc.Register(NodeMethodDelete, n.handleDelete)
	return n
}

// Store exposes the node's local store (for in-process setup in tests).
func (n *StorageNode) Store() *objstore.Store { return n.store }

// Listen binds the node's RPC server.
func (n *StorageNode) Listen(addr string) (string, error) {
	n.rpc.Metrics = n.Metrics
	n.rpc.Tracer = n.Tracer
	n.rpc.StreamWindow = n.StreamWindow
	n.Caches.Instrument(n.Metrics, "node", n.nodeLabel())
	return n.rpc.Listen(addr)
}

// nodeLabel is the metric label value identifying this node.
func (n *StorageNode) nodeLabel() string { return fmt.Sprintf("node%d", n.ID) }

// loadSignal samples the node-wide scan backlog for stamping onto
// outgoing stream frames and mirrors it on the /metrics gauge.
func (n *StorageNode) loadSignal(gauge *telemetry.Gauge) uint32 {
	backlog := n.sched.backlog()
	gauge.Set(int64(backlog))
	return uint32(backlog)
}

// Close shuts the node down: the RPC server first (draining in-flight
// handlers, whose scan queues empty through the scheduler), then the
// scan workers.
func (n *StorageNode) Close() error {
	err := n.rpc.Close()
	n.sched.close()
	return err
}

// DefaultMaxBloomBytes is the bloom bit-array cap applied when
// MaxBloomBytes is zero: 256 KiB holds ~200k build keys at the default
// 10 bits/key, well past the broadcast-join threshold, while keeping a
// degenerate plan from shipping an arbitrarily large array per split.
const DefaultMaxBloomBytes = 256 << 10

// checkBloomSize enforces MaxBloomBytes on every BloomFilterRel in the
// plan. The error is CodeInvalid — not transient — so the connector
// retries without the filter instead of falling back off pushdown
// entirely. Only the RPC path enforces the cap: local replay
// (ExecuteLocal*) runs whatever the engine already committed to.
func (n *StorageNode) checkBloomSize(plan *substrait.Plan) error {
	limit := n.MaxBloomBytes
	if limit == 0 {
		limit = DefaultMaxBloomBytes
	}
	if limit < 0 {
		return nil
	}
	var reject error
	substrait.WalkRels(plan.Root, func(r substrait.Rel) {
		if b, ok := r.(*substrait.BloomFilterRel); ok && len(b.Bits) > limit && reject == nil {
			reject = rpc.WithCode(fmt.Errorf("node %d: bloom filter %d bytes exceeds cap %d", n.ID, len(b.Bits), limit), rpc.CodeInvalid)
		}
	})
	return reject
}

// handleExecute parses a Substrait plan, runs it locally and streams the
// result: chunk 0 is an arrowlite schema message, every further chunk is
// one arrowlite record-batch message, and the end-frame trailer carries
// the work stats. Batches leave the node as the executor produces them,
// so the engine consumes row group 1 while row group N is still being
// scanned. Errors after the first chunk surface as mid-stream error
// frames, which the client turns into query errors.
func (n *StorageNode) handleExecute(ctx context.Context, payload []byte, send func([]byte) error) ([]byte, error) {
	if fault := n.executeFault(); fault != nil {
		return nil, rpc.WithCode(fmt.Errorf("node %d: %w", n.ID, fault), rpc.CodeUnavailable)
	}
	ctx, span := telemetry.StartSpan(ctx, "node.execute")
	defer span.End()
	span.SetAttr("node", n.nodeLabel())
	chunksSent := n.Metrics.Counter(telemetry.MetricNodeChunksSent, "node", n.nodeLabel())
	chunkBytes := n.Metrics.Counter(telemetry.MetricNodeChunkBytes, "node", n.nodeLabel())
	backlog := n.Metrics.Gauge(telemetry.MetricNodeSchedBacklog, "node", n.nodeLabel())
	planBytes, chunkRows := decodeExecuteRequest(payload)
	if chunkRows <= 0 {
		chunkRows = n.ChunkRows
	}
	plan, err := substrait.Unmarshal(planBytes)
	if err != nil {
		return nil, rpc.WithCode(fmt.Errorf("node %d: invalid plan: %w", n.ID, err), rpc.CodeInvalid)
	}
	// Partial aggregation changes the output schema (it is still keys +
	// one column per measure, same names/kinds for our function set), so
	// the first page's schema is authoritative once a page exists; the
	// validated plan schema covers the zero-page case.
	planSchema, err := plan.Validate()
	if err != nil {
		return nil, rpc.WithCode(fmt.Errorf("node %d: %w", n.ID, err), rpc.CodeInvalid)
	}
	if err := n.checkBloomSize(plan); err != nil {
		return nil, err
	}
	env := newExecEnv(n.ScanPool)
	env.ctx = ctx
	env.caches = n.Caches
	env.sched = n.sched
	defer env.close()
	op, err := compilePlan(n.store, plan, env)
	if err != nil {
		return nil, fmt.Errorf("node %d: %w", n.ID, err)
	}

	buf := arrowlite.GetBuf()
	defer arrowlite.PutBuf(buf)
	sentSchema := false
	sendSchema := func(schema *types.Schema) error {
		msg, err := arrowlite.AppendSchema((*buf)[:0], schema)
		if err != nil {
			return err
		}
		*buf = msg
		sentSchema = true
		chunksSent.Inc()
		chunkBytes.Add(int64(len(msg)))
		rpc.SetStreamLoad(ctx, n.loadSignal(backlog))
		return send(msg)
	}
	sendBatch := func(page *column.Page) error {
		msg, err := arrowlite.AppendBatch((*buf)[:0], page)
		if err != nil {
			return err
		}
		*buf = msg
		chunksSent.Inc()
		chunkBytes.Add(int64(len(msg)))
		rpc.SetStreamLoad(ctx, n.loadSignal(backlog))
		return send(msg)
	}

	var staged *column.Page // coalescing buffer when chunkRows > 0
	for {
		// A cancelled caller stops the scan between pages; the stream
		// error frame carries the context verdict back.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("node %d: %w", n.ID, err)
		}
		page, err := op.Next()
		if err != nil {
			return nil, fmt.Errorf("node %d: %w", n.ID, err)
		}
		if page == nil {
			break
		}
		if !sentSchema {
			if err := sendSchema(page.Schema); err != nil {
				return nil, err
			}
		}
		if chunkRows > 0 {
			if staged == nil {
				staged = column.NewPage(page.Schema)
				// Pages after a selective filter are small; reserve the
				// chunk up front so coalescing appends never regrow.
				staged.Reserve(chunkRows)
			}
			staged.AppendPage(page)
			if staged.NumRows() < chunkRows {
				continue
			}
			page, staged = staged, nil
		}
		if err := sendBatch(page); err != nil {
			return nil, err
		}
	}
	if staged != nil && staged.NumRows() > 0 {
		if err := sendBatch(staged); err != nil {
			return nil, err
		}
	}
	if !sentSchema {
		if err := sendSchema(planSchema); err != nil {
			return nil, err
		}
	}
	env.close()
	// Refresh the load word once more so the end frame carries the
	// post-scan backlog (this query's queue is gone by now).
	rpc.SetStreamLoad(ctx, n.loadSignal(backlog))
	st := env.finish()
	span.SetAttr("bytes_read", fmt.Sprint(st.BytesRead))
	span.SetAttr("rows_processed", fmt.Sprint(st.RowsProcessed))
	e := protowire.NewEncoder()
	encodeWorkStats(e, 1, *st)
	return e.Encoded(), nil
}

func encodeWorkStats(e *protowire.Encoder, field int, st objstore.WorkStats) {
	e.Message(field, func(m *protowire.Encoder) {
		m.Int64(1, st.BytesRead)
		m.Int64(2, st.BytesDecompressed)
		m.Double(3, st.CPUUnits)
		m.Int64(4, st.RowsProcessed)
	})
}

func decodeWorkStats(d *protowire.Decoder) (objstore.WorkStats, error) {
	var st objstore.WorkStats
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return st, err
		}
		switch f {
		case 1:
			st.BytesRead, err = d.Int64()
		case 2:
			st.BytesDecompressed, err = d.Int64()
		case 3:
			st.CPUUnits, err = d.Double()
		case 4:
			st.RowsProcessed, err = d.Int64()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return st, err
		}
	}
	return st, nil
}

// handleDelete removes an object from the store and drops its cached
// footers and pages. Idempotent: deleting a missing key succeeds, so
// frontend retries after a killed connection are safe.
func (n *StorageNode) handleDelete(_ context.Context, payload []byte) ([]byte, error) {
	d := protowire.NewDecoder(payload)
	var bucket, key string
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			bucket, err = d.String()
		case 2:
			key, err = d.String()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, err
		}
	}
	if bucket == "" || key == "" {
		return nil, fmt.Errorf("node %d: delete requires bucket and key", n.ID)
	}
	n.store.Delete(bucket, key)
	n.Caches.InvalidateObject(bucket, key)
	return nil, nil
}

func (n *StorageNode) handlePut(_ context.Context, payload []byte) ([]byte, error) {
	d := protowire.NewDecoder(payload)
	var bucket, key string
	var data []byte
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			bucket, err = d.String()
		case 2:
			key, err = d.String()
		case 3:
			data, err = d.Bytes()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, err
		}
	}
	if bucket == "" || key == "" {
		return nil, fmt.Errorf("node %d: put requires bucket and key", n.ID)
	}
	n.store.Put(bucket, key, data)
	// Release cached footers/pages of the overwritten object early. The
	// store generation in every cache key already makes stale hits
	// impossible; this just frees the budget immediately.
	n.Caches.InvalidateObject(bucket, key)
	return nil, nil
}

func (n *StorageNode) handleGet(_ context.Context, payload []byte) ([]byte, error) {
	d := protowire.NewDecoder(payload)
	var bucket, key string
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			bucket, err = d.String()
		case 2:
			key, err = d.String()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, err
		}
	}
	data, err := n.store.Get(bucket, key)
	if err != nil {
		return nil, rpc.WithCode(err, rpc.CodeNotFound)
	}
	e := protowire.NewEncoder()
	e.Bytes(1, data)
	encodeWorkStats(e, 2, objstore.WorkStats{BytesRead: int64(len(data))})
	return e.Encoded(), nil
}

func (n *StorageNode) handleList(_ context.Context, payload []byte) ([]byte, error) {
	d := protowire.NewDecoder(payload)
	var bucket, prefix string
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1:
			bucket, err = d.String()
		case 2:
			prefix, err = d.String()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return nil, err
		}
	}
	keys, err := n.store.List(bucket, prefix)
	if err != nil {
		return nil, err
	}
	e := protowire.NewEncoder()
	for _, k := range keys {
		e.String(1, k)
	}
	return e.Encoded(), nil
}
