package ocsserver

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"sync"

	"prestocs/internal/protowire"
	"prestocs/internal/retry"
	"prestocs/internal/rpc"
	"prestocs/internal/substrait"
	"prestocs/internal/telemetry"
)

// RPC methods exposed by the frontend (application-facing).
const (
	MethodExecute = "ocs.Execute"
	MethodPut     = "ocs.Put"
	MethodGet     = "ocs.Get"
	MethodList    = "ocs.List"
	MethodDelete  = "ocs.Delete"
)

// Frontend is the OCS entry point: it accepts Substrait plans, resolves
// which storage node holds the target object and forwards the plan for
// in-storage execution; results stream back in Arrow format. It also
// routes object management (PUT/GET/LIST) so applications see one
// endpoint, as in the paper's hierarchical design. Node calls inherit
// the caller's context deadline and are retried on transient failure —
// for Execute only until the first chunk has been forwarded, since the
// client cannot be handed a restarted stream mid-flight.
type Frontend struct {
	rpc   *rpc.Server
	nodes []*rpc.Client

	// Retry governs node fan-out retries; set before Listen.
	Retry retry.Policy

	// StreamWindow bounds unacknowledged chunks per proxied stream toward
	// the application (0 = rpc.DefaultStreamWindow, negative disables).
	// With the node-side window this chains backpressure end-to-end: a
	// slow application reader stalls the frontend, which stops crediting
	// the node, which pauses the scan. Set before Listen.
	StreamWindow int

	// Metrics receives transport metrics for both the application-facing
	// server and the node-facing clients; Tracer continues traces arriving
	// in request headers. Both are optional and must be set before Listen.
	Metrics *telemetry.Registry
	Tracer  *telemetry.Tracer

	mu        sync.RWMutex
	placement map[string]int // "bucket/key" -> node index
}

// NewFrontend connects to the given storage-node addresses. A frontend
// with no storage nodes cannot place or route anything, so zero addresses
// is a configuration error rather than a latent panic in nodeFor.
func NewFrontend(nodeAddrs []string) (*Frontend, error) {
	if len(nodeAddrs) == 0 {
		return nil, fmt.Errorf("ocs: frontend requires at least one storage node")
	}
	f := &Frontend{rpc: rpc.NewServer(), placement: make(map[string]int), Retry: retry.Default()}
	for _, addr := range nodeAddrs {
		f.nodes = append(f.nodes, rpc.Dial(addr))
	}
	f.rpc.RegisterStream(MethodExecute, f.handleExecute)
	f.rpc.Register(MethodPut, f.handlePut)
	f.rpc.Register(MethodGet, f.handleGet)
	f.rpc.Register(MethodList, f.handleList)
	f.rpc.Register(MethodDelete, f.handleDelete)
	return f, nil
}

// Listen binds the frontend's RPC server.
func (f *Frontend) Listen(addr string) (string, error) {
	f.rpc.Metrics = f.Metrics
	f.rpc.Tracer = f.Tracer
	f.rpc.StreamWindow = f.StreamWindow
	for _, n := range f.nodes {
		n.Metrics = f.Metrics
	}
	return f.rpc.Listen(addr)
}

// Close shuts down the frontend and its node connections.
func (f *Frontend) Close() error {
	for _, n := range f.nodes {
		n.Close()
	}
	return f.rpc.Close()
}

// NumNodes returns the number of attached storage nodes.
func (f *Frontend) NumNodes() int { return len(f.nodes) }

func (f *Frontend) nodeFor(bucket, key string) int {
	f.mu.RLock()
	idx, ok := f.placement[bucket+"/"+key]
	f.mu.RUnlock()
	if ok {
		return idx
	}
	h := fnv.New32a()
	h.Write([]byte(bucket + "/" + key))
	return int(h.Sum32()) % len(f.nodes)
}

func (f *Frontend) recordPlacement(bucket, key string, node int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.placement[bucket+"/"+key] = node
}

// handleExecute validates the plan, routes it to the node holding the
// object named by its ReadRel and proxies the node's result stream chunk
// by chunk — the frontend never buffers more than one chunk, so bytes
// reach the engine while the node is still scanning. Failures before the
// first chunk reaches the client are retried; after that the stream
// cannot be transparently restarted, so the error propagates and the
// client (or the connector's fallback) takes over.
func (f *Frontend) handleExecute(ctx context.Context, payload []byte, send func([]byte) error) ([]byte, error) {
	planBytes, _ := decodeExecuteRequest(payload)
	plan, err := substrait.Unmarshal(planBytes)
	if err != nil {
		return nil, rpc.WithCode(fmt.Errorf("ocs: rejecting plan: %w", err), rpc.CodeInvalid)
	}
	var read *substrait.ReadRel
	substrait.WalkRels(plan.Root, func(r substrait.Rel) {
		if rd, ok := r.(*substrait.ReadRel); ok {
			read = rd
		}
	})
	if read == nil {
		return nil, rpc.WithCode(fmt.Errorf("ocs: plan has no read relation"), rpc.CodeInvalid)
	}
	node := f.nodeFor(read.Bucket, read.Object)
	ctx, span := telemetry.StartSpan(ctx, "frontend.forward")
	defer span.End()
	span.SetAttr("node", fmt.Sprintf("node%d", node))
	span.SetAttr("object", read.Bucket+"/"+read.Object)
	var trailer []byte
	err = f.Retry.Do(ctx, func() error {
		st, err := f.nodes[node].Stream(ctx, NodeMethodExecute, payload)
		if err != nil {
			return err
		}
		defer st.Close()
		forwarded := false
		for {
			chunk, err := st.Recv()
			if err == io.EOF {
				// Pass the node's final load word through so the end frame
				// toward the application carries it too.
				rpc.SetStreamLoad(ctx, st.Load())
				trailer = st.Trailer()
				return nil
			}
			if err != nil {
				if forwarded {
					// The client has already seen part of this stream;
					// restarting would duplicate chunks.
					return retry.Permanent(err)
				}
				return err
			}
			// Relay the node's load word onto the outgoing chunk: the
			// frontend is a pure proxy for the storage-load signal.
			rpc.SetStreamLoad(ctx, st.Load())
			if err := send(chunk); err != nil {
				// Our own downstream died; nothing to retry.
				return retry.Permanent(err)
			}
			forwarded = true
		}
	})
	if err != nil {
		return nil, err
	}
	return trailer, nil
}

func (f *Frontend) handlePut(ctx context.Context, payload []byte) ([]byte, error) {
	if len(f.nodes) == 0 {
		return nil, fmt.Errorf("ocs: frontend has no storage nodes")
	}
	bucket, key, err := peekBucketKey(payload)
	if err != nil {
		return nil, err
	}
	node := f.nodeFor(bucket, key)
	err = f.Retry.Do(ctx, func() error {
		_, err := f.nodes[node].Call(ctx, NodeMethodPut, payload)
		return err
	})
	if err != nil {
		return nil, err
	}
	f.recordPlacement(bucket, key, node)
	return nil, nil
}

func (f *Frontend) handleGet(ctx context.Context, payload []byte) ([]byte, error) {
	bucket, key, err := peekBucketKey(payload)
	if err != nil {
		return nil, err
	}
	node := f.nodeFor(bucket, key)
	var resp []byte
	err = f.Retry.Do(ctx, func() error {
		var err error
		resp, err = f.nodes[node].Call(ctx, NodeMethodGet, payload)
		return err
	})
	return resp, err
}

// handleDelete routes a physical object delete to the owning node and
// forgets its placement entry. Deletes are idempotent end to end (the
// store treats a missing key as success), so the retry policy is safe.
func (f *Frontend) handleDelete(ctx context.Context, payload []byte) ([]byte, error) {
	bucket, key, err := peekBucketKey(payload)
	if err != nil {
		return nil, err
	}
	node := f.nodeFor(bucket, key)
	err = f.Retry.Do(ctx, func() error {
		_, err := f.nodes[node].Call(ctx, NodeMethodDelete, payload)
		return err
	})
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	delete(f.placement, bucket+"/"+key)
	f.mu.Unlock()
	return nil, nil
}

// handleList merges listings from every node.
func (f *Frontend) handleList(ctx context.Context, payload []byte) ([]byte, error) {
	merged := map[string]bool{}
	for _, n := range f.nodes {
		var resp []byte
		err := f.Retry.Do(ctx, func() error {
			var err error
			resp, err = n.Call(ctx, NodeMethodList, payload)
			return err
		})
		if err != nil {
			return nil, err
		}
		d := protowire.NewDecoder(resp)
		for !d.Done() {
			field, ty, err := d.Next()
			if err != nil {
				return nil, err
			}
			if field != 1 {
				if err := d.Skip(ty); err != nil {
					return nil, err
				}
				continue
			}
			k, err := d.String()
			if err != nil {
				return nil, err
			}
			merged[k] = true
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	// Sorted for determinism.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	e := protowire.NewEncoder()
	for _, k := range keys {
		e.String(1, k)
	}
	return e.Encoded(), nil
}

func peekBucketKey(payload []byte) (string, string, error) {
	d := protowire.NewDecoder(payload)
	var bucket, key string
	for !d.Done() {
		f, ty, err := d.Next()
		if err != nil {
			return "", "", err
		}
		switch f {
		case 1:
			bucket, err = d.String()
		case 2:
			key, err = d.String()
		default:
			err = d.Skip(ty)
		}
		if err != nil {
			return "", "", rpc.WithCode(err, rpc.CodeInvalid)
		}
	}
	if bucket == "" || key == "" {
		return "", "", rpc.WithCode(fmt.Errorf("ocs: request requires bucket and key"), rpc.CodeInvalid)
	}
	return bucket, key, nil
}
