// Package ocsserver implements the Object-based Computational Storage
// system: a frontend node that accepts Substrait plans over RPC and
// dispatches them to storage nodes, each of which holds objects and runs
// an embedded SQL engine (built from internal/exec) directly over its
// parquetlite objects, returning Apache Arrow-style columnar results.
// This mirrors the paper's OCS architecture (§2.3, §5.1).
package ocsserver

import (
	"fmt"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/exec"
	"prestocs/internal/expr"
	"prestocs/internal/objstore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/substrait"
)

// compilePlan lowers a validated Substrait plan into an exec pipeline over
// the local store. The meter accumulates storage-side CPU work; reader
// I/O is merged into stats after execution.
//
// Row-group pruning: when a FilterRel sits directly on the ReadRel, the
// filter condition is remapped to full-schema ordinals and used to prune
// row groups via chunk statistics before any column data is read.
func compilePlan(store *objstore.Store, plan *substrait.Plan, meter *exec.Meter, stats *objstore.WorkStats) (exec.Operator, error) {
	return compileRel(store, plan.Root, meter, stats)
}

func compileRel(store *objstore.Store, rel substrait.Rel, meter *exec.Meter, stats *objstore.WorkStats) (exec.Operator, error) {
	switch t := rel.(type) {
	case *substrait.ReadRel:
		return compileRead(store, t, nil, meter, stats)
	case *substrait.FilterRel:
		if read, ok := t.Input.(*substrait.ReadRel); ok {
			// Fuse filter into the scan so pruning can use the predicate.
			src, err := compileRead(store, read, t.Condition, meter, stats)
			if err != nil {
				return nil, err
			}
			return exec.NewFilter(src, t.Condition, meter)
		}
		input, err := compileRel(store, t.Input, meter, stats)
		if err != nil {
			return nil, err
		}
		return exec.NewFilter(input, t.Condition, meter)
	case *substrait.ProjectRel:
		input, err := compileRel(store, t.Input, meter, stats)
		if err != nil {
			return nil, err
		}
		return exec.NewProject(input, t.Expressions, t.Names, meter)
	case *substrait.AggregateRel:
		input, err := compileRel(store, t.Input, meter, stats)
		if err != nil {
			return nil, err
		}
		// Storage nodes always produce partial aggregates; the engine
		// merges them (DESIGN.md §4).
		return exec.NewHashAggregate(input, t.GroupKeys, t.Measures, exec.AggPartial, meter)
	case *substrait.SortRel:
		input, err := compileRel(store, t.Input, meter, stats)
		if err != nil {
			return nil, err
		}
		keys := make([]exec.SortSpec, len(t.Keys))
		for i, k := range t.Keys {
			keys[i] = exec.SortSpec{Column: k.Column, Descending: k.Descending}
		}
		return exec.NewSort(input, keys, meter)
	case *substrait.FetchRel:
		// Sort+Fetch compiles to TopN; bare Fetch to Limit.
		if sortRel, ok := t.Input.(*substrait.SortRel); ok {
			input, err := compileRel(store, sortRel.Input, meter, stats)
			if err != nil {
				return nil, err
			}
			keys := make([]exec.SortSpec, len(sortRel.Keys))
			for i, k := range sortRel.Keys {
				keys[i] = exec.SortSpec{Column: k.Column, Descending: k.Descending}
			}
			return exec.NewTopN(input, keys, t.Offset+t.Count, meter)
		}
		input, err := compileRel(store, t.Input, meter, stats)
		if err != nil {
			return nil, err
		}
		return exec.NewLimit(input, t.Offset+t.Count), nil
	default:
		return nil, fmt.Errorf("ocsserver: unsupported relation %T", rel)
	}
}

// compileRead builds a page source over the object, applying column
// projection and (when pruneWith is non-nil) row-group pruning.
func compileRead(store *objstore.Store, read *substrait.ReadRel, pruneWith expr.Expr, meter *exec.Meter, stats *objstore.WorkStats) (exec.Operator, error) {
	data, err := store.Get(read.Bucket, read.Object)
	if err != nil {
		return nil, err
	}
	r, err := parquetlite.NewReader(data)
	if err != nil {
		return nil, fmt.Errorf("ocsserver: %s/%s: %w", read.Bucket, read.Object, err)
	}
	fileSchema := r.Schema()
	outSchema, err := read.OutputSchema()
	if err != nil {
		return nil, err
	}
	// The plan's base schema must agree with the stored object.
	if !read.BaseSchema.Equal(fileSchema) {
		return nil, fmt.Errorf("ocsserver: plan schema %s does not match object schema %s", read.BaseSchema, fileSchema)
	}
	cols := read.Projection
	if cols == nil {
		cols = make([]int, fileSchema.Len())
		for i := range cols {
			cols[i] = i
		}
	}

	// Remap the predicate from read-output ordinals to full-schema
	// ordinals for pruning; skip pruning when the mapping is partial.
	groups := make([]int, len(r.Meta().RowGroups))
	for i := range groups {
		groups[i] = i
	}
	if pruneWith != nil {
		mapping := make(map[int]int, len(cols))
		for outIdx, fullIdx := range cols {
			mapping[outIdx] = fullIdx
		}
		if remapped, err := expr.Remap(pruneWith, mapping); err == nil {
			groups = r.PruneRowGroups(remapped)
		}
	}

	idx := 0
	var prevRead, prevDecompressed int64
	codec := r.Meta().Codec
	src := exec.NewFuncSource(outSchema, func() (*column.Page, error) {
		if idx >= len(groups) {
			return nil, nil
		}
		rg := groups[idx]
		idx++
		page, err := r.ReadRowGroup(rg, cols)
		if err != nil {
			return nil, err
		}
		// Merge reader I/O counters incrementally so stats stay correct
		// even if the pipeline stops early (e.g. under a Limit) and when
		// several reads share one stats sink.
		stats.BytesRead += r.BytesRead - prevRead
		deltaDec := r.BytesDecompressed - prevDecompressed
		stats.BytesDecompressed += deltaDec
		// Decompression is CPU spent at whichever node runs this scan.
		stats.CPUUnits += float64(deltaDec) * compress.DecompressCostPerByte(codec)
		prevRead, prevDecompressed = r.BytesRead, r.BytesDecompressed
		return page, nil
	})
	_ = meter
	return src, nil
}

// ExecuteLocal runs a plan against a local store and returns the result
// pages plus storage-side work stats. This is the storage node's embedded
// SQL engine entry point; it is exported for direct (in-process) use by
// tests and the quickstart example.
func ExecuteLocal(store *objstore.Store, plan *substrait.Plan) ([]*column.Page, *objstore.WorkStats, error) {
	if _, err := plan.Validate(); err != nil {
		return nil, nil, err
	}
	var meter exec.Meter
	var stats objstore.WorkStats
	op, err := compilePlan(store, plan, &meter, &stats)
	if err != nil {
		return nil, nil, err
	}
	pages, err := exec.Drain(op)
	if err != nil {
		return nil, nil, err
	}
	stats.RowsProcessed = meter.Rows
	stats.CPUUnits += meter.Units
	return pages, &stats, nil
}
