// Package ocsserver implements the Object-based Computational Storage
// system: a frontend node that accepts Substrait plans over RPC and
// dispatches them to storage nodes, each of which holds objects and runs
// an embedded SQL engine (built from internal/exec) directly over its
// parquetlite objects, returning Apache Arrow-style columnar results.
// This mirrors the paper's OCS architecture (§2.3, §5.1).
package ocsserver

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"prestocs/internal/bloom"
	"prestocs/internal/cache"
	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/costmodel"
	"prestocs/internal/exec"
	"prestocs/internal/expr"
	"prestocs/internal/objstore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/rpc"
	"prestocs/internal/substrait"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// execEnv carries the shared state of one local plan execution: the
// operator meter, the work-stats sink (guarded by mu because the parallel
// scanner merges reader I/O from several goroutines), the scan-pool size
// and the cleanup hooks that stop scanner workers when the pipeline is
// drained or abandoned.
type execEnv struct {
	meter    exec.Meter
	mu       sync.Mutex
	stats    objstore.WorkStats
	scanPool int
	closers  []func()

	// sched is the fair-share scan scheduler this execution submits its
	// row-group tasks to: the node's shared scheduler for RPC queries, or
	// an ephemeral one owned by runEnv for in-process entry points.
	sched *scanScheduler
	// ownSched marks an ephemeral scheduler that runEnv must close.
	ownSched bool

	// noPrune disables statistics-driven row-group pruning; the
	// differential property tests compare pruned runs against it.
	noPrune bool

	// caches holds the node's footer and hot-page caches; nil runs fully
	// uncached (in-process ExecuteLocal callers and the connector's
	// fallback replay, which must not touch node caches it cannot see).
	caches *cache.Storage

	// ctx carries the ambient tracer, span and metrics registry of the
	// request this execution serves; nil means no telemetry (in-process
	// ExecuteLocal callers).
	ctx context.Context
}

// context returns the env's request context, never nil.
func (env *execEnv) context() context.Context {
	if env.ctx == nil {
		return context.Background()
	}
	return env.ctx
}

func newExecEnv(scanPool int) *execEnv {
	if scanPool <= 0 {
		scanPool = costmodel.StorageScanParallelism()
	}
	return &execEnv{scanPool: scanPool}
}

// addStatsDelta merges one row group's reader I/O into the shared sink.
func (env *execEnv) addStatsDelta(bytesRead, bytesDecompressed int64, cpuUnits float64) {
	env.mu.Lock()
	env.stats.BytesRead += bytesRead
	env.stats.BytesDecompressed += bytesDecompressed
	env.stats.CPUUnits += cpuUnits
	env.mu.Unlock()
}

// close stops scanner workers and waits for them to exit. Safe to call
// more than once.
func (env *execEnv) close() {
	for _, fn := range env.closers {
		fn()
	}
	env.closers = nil
}

// finish folds the operator meter into the stats snapshot and returns it.
// Call after the pipeline has been drained and closed.
func (env *execEnv) finish() *objstore.WorkStats {
	env.mu.Lock()
	defer env.mu.Unlock()
	st := env.stats
	st.RowsProcessed = env.meter.Rows
	st.CPUUnits += env.meter.Units
	return &st
}

// compilePlan lowers a validated Substrait plan into an exec pipeline over
// the local store. The env's meter accumulates storage-side CPU work;
// reader I/O is merged into env.stats incrementally as row groups are
// read.
//
// Row-group pruning: when a FilterRel sits directly on the ReadRel, the
// filter condition is remapped to full-schema ordinals and used to prune
// row groups via chunk statistics before any column data is read.
func compilePlan(store *objstore.Store, plan *substrait.Plan, env *execEnv) (exec.Operator, error) {
	return compileRel(store, plan.Root, env)
}

func compileRel(store *objstore.Store, rel substrait.Rel, env *execEnv) (exec.Operator, error) {
	switch t := rel.(type) {
	case *substrait.ReadRel:
		return compileRead(store, t, nil, env)
	case *substrait.FilterRel:
		if read, ok := t.Input.(*substrait.ReadRel); ok {
			// Fuse filter into the scan so pruning can use the predicate.
			// The filter evaluates through the vectorized selection path
			// over the scanner's row-group pages; when a Project or a
			// second Filter sits above it, the selection is handed over
			// unmaterialized (exec.SelSource) and dense pages are only
			// built at the stream/aggregate boundary.
			src, err := compileRead(store, read, t.Condition, env)
			if err != nil {
				return nil, err
			}
			return exec.NewFilter(src, t.Condition, &env.meter)
		}
		input, err := compileRel(store, t.Input, env)
		if err != nil {
			return nil, err
		}
		return exec.NewFilter(input, t.Condition, &env.meter)
	case *substrait.BloomFilterRel:
		// Join semi-filter pushed from the engine: hash each probe row's
		// key against the build side's bloom bits and drop proven misses
		// before they reach the wire. Sits above FilterRel by IR contract,
		// so filter-on-read fusion (row-group pruning) still fires below.
		input, err := compileRel(store, t.Input, env)
		if err != nil {
			return nil, err
		}
		f, err := bloom.FromBits(t.Bits, t.NumHash)
		if err != nil {
			return nil, rpc.WithCode(fmt.Errorf("ocsserver: bad bloom filter: %w", err), rpc.CodeInvalid)
		}
		reg := telemetry.RegistryFrom(env.context())
		tested := reg.Counter(telemetry.MetricStorageBloomRowsTested)
		filtered := reg.Counter(telemetry.MetricStorageBloomRowsFiltered)
		return exec.NewBloomProbe(input, t.Column, f, &env.meter, func(in, kept int) {
			tested.Add(int64(in))
			filtered.Add(int64(in - kept))
		})
	case *substrait.ProjectRel:
		input, err := compileRel(store, t.Input, env)
		if err != nil {
			return nil, err
		}
		return exec.NewProject(input, t.Expressions, t.Names, &env.meter)
	case *substrait.AggregateRel:
		input, err := compileRel(store, t.Input, env)
		if err != nil {
			return nil, err
		}
		// Storage nodes always produce partial aggregates; the engine
		// merges them (DESIGN.md §4).
		return exec.NewHashAggregate(input, t.GroupKeys, t.Measures, exec.AggPartial, &env.meter)
	case *substrait.SortRel:
		input, err := compileRel(store, t.Input, env)
		if err != nil {
			return nil, err
		}
		keys := make([]exec.SortSpec, len(t.Keys))
		for i, k := range t.Keys {
			keys[i] = exec.SortSpec{Column: k.Column, Descending: k.Descending}
		}
		return exec.NewSort(input, keys, &env.meter)
	case *substrait.FetchRel:
		// Sort+Fetch compiles to TopN; bare Fetch to Limit.
		if sortRel, ok := t.Input.(*substrait.SortRel); ok {
			input, err := compileRel(store, sortRel.Input, env)
			if err != nil {
				return nil, err
			}
			keys := make([]exec.SortSpec, len(sortRel.Keys))
			for i, k := range sortRel.Keys {
				keys[i] = exec.SortSpec{Column: k.Column, Descending: k.Descending}
			}
			return exec.NewTopN(input, keys, t.Offset+t.Count, &env.meter)
		}
		input, err := compileRel(store, t.Input, env)
		if err != nil {
			return nil, err
		}
		return exec.NewLimit(input, t.Offset+t.Count), nil
	default:
		return nil, fmt.Errorf("ocsserver: unsupported relation %T", rel)
	}
}

// compileRead builds a page source over the object, applying column
// projection and (when pruneWith is non-nil) row-group pruning. With a
// scan pool larger than one and several surviving row groups, the source
// scans row groups concurrently with an order-preserving merge.
func compileRead(store *objstore.Store, read *substrait.ReadRel, pruneWith expr.Expr, env *execEnv) (exec.Operator, error) {
	data, ver, err := store.GetVersioned(read.Bucket, read.Object)
	if err != nil {
		return nil, rpc.WithCode(err, rpc.CodeNotFound)
	}
	// The object key embeds the store generation, so footers and pages
	// cached for an earlier version of a re-put object can never be hit.
	objKey := cache.ObjectKey(read.Bucket, read.Object, ver)
	r, err := env.caches.Footer().Open(objKey, data)
	if err != nil {
		return nil, fmt.Errorf("ocsserver: %s/%s: %w", read.Bucket, read.Object, err)
	}
	fileSchema := r.Schema()
	outSchema, err := read.OutputSchema()
	if err != nil {
		return nil, err
	}
	// The plan's base schema must agree with the stored object.
	if !read.BaseSchema.Equal(fileSchema) {
		return nil, fmt.Errorf("ocsserver: plan schema %s does not match object schema %s", read.BaseSchema, fileSchema)
	}
	cols := read.Projection
	if cols == nil {
		cols = make([]int, fileSchema.Len())
		for i := range cols {
			cols[i] = i
		}
	}

	// Remap the predicate from read-output ordinals to full-schema
	// ordinals for pruning; skip pruning when the mapping is partial.
	// Pruning-heavy scans (at least half the groups skipped) switch the
	// page cache to two-touch admission: a highly selective workload
	// rarely re-reads the same surviving chunks, so first sightings go to
	// the ghost list instead of evicting genuinely hot pages.
	groups := make([]int, len(r.Meta().RowGroups))
	for i := range groups {
		groups[i] = i
	}
	twoTouch := false
	if pruneWith != nil && !env.noPrune {
		mapping := make(map[int]int, len(cols))
		for outIdx, fullIdx := range cols {
			mapping[outIdx] = fullIdx
		}
		if remapped, err := expr.Remap(pruneWith, mapping); err == nil {
			if ranges := expr.AnalyzeRanges(remapped); ranges.Constrained() {
				keep, pruned, skipped := r.PruneRowGroupsRanges(ranges, cols)
				if len(pruned) > 0 {
					recordPrune(env, read.Object, pruned, skipped)
					groups = keep
					twoTouch = 2*len(pruned) >= len(r.Meta().RowGroups)
				}
			}
		}
	}

	// Multi-group scans on a node's shared scheduler always go through it —
	// even at ScanPool=1, where there is no intra-scan parallelism, the
	// scheduler is what round-robins concurrent queries fairly and what the
	// node's storage-load signal (scheduler backlog) is sampled from; an
	// inline scan would be invisible to both. An env that owns an ephemeral
	// scheduler (in-process entry points, the connector's replay paths) has
	// neither concern, so it only pays the per-task handoff when it buys
	// real parallelism.
	if env.sched != nil && len(groups) > 1 && (!env.ownSched || env.scanPool > 1) {
		return parallelScan(env, data, r.Meta(), objKey, groups, cols, twoTouch, outSchema), nil
	}

	idx := 0
	projSchema := r.Meta().Schema.Project(cols)
	scanned := telemetry.RegistryFrom(env.context()).Counter(telemetry.MetricScanPoolRowGroups)
	return exec.NewFuncSource(outSchema, func() (*column.Page, error) {
		if idx >= len(groups) {
			return nil, nil
		}
		rg := groups[idx]
		idx++
		_, sp := telemetry.StartSpan(env.context(), "scan.rowgroup")
		sp.SetAttr("group", strconv.Itoa(rg))
		page, err := env.readGroup(r, objKey, rg, cols, projSchema, twoTouch)
		sp.End()
		scanned.Inc()
		if err != nil {
			return nil, err
		}
		return page, nil
	}), nil
}

// readGroup materializes one row group's projected columns, serving
// individual chunks from the node's hot-page cache when possible. It is
// the single post-prune decode site: every rg comes from a keep list.
// Cache hits cost no storage I/O or decompression, so only the chunks
// actually decoded are merged into the work stats — which is exactly the
// bytes-decoded drop BenchmarkHotCache measures.
func (env *execEnv) readGroup(r *parquetlite.Reader, objKey string, rg int, cols []int, schema *types.Schema, twoTouch bool) (*column.Page, error) {
	pc := env.caches.Pages()
	prevRead, prevDec := r.BytesRead, r.BytesDecompressed
	page := &column.Page{Schema: schema, Vectors: make([]*column.Vector, len(cols))}
	for i, c := range cols {
		var key string
		if pc != nil {
			key = cache.PageKey(objKey, rg, c)
			if vec, ok := pc.Get(key); ok {
				page.Vectors[i] = vec
				continue
			}
		}
		vec, err := r.ReadColumn(rg, c) // vet-pruning:allow rg comes from the post-prune keep list
		if err != nil {
			return nil, err
		}
		if pc != nil {
			pc.Put(key, vec, twoTouch)
		}
		page.Vectors[i] = vec
	}
	// Merge reader I/O counters incrementally so stats stay correct even
	// if the pipeline stops early (e.g. under a Limit) and when several
	// reads share one stats sink.
	if deltaDec := r.BytesDecompressed - prevDec; deltaDec > 0 || r.BytesRead > prevRead {
		env.addStatsDelta(r.BytesRead-prevRead, deltaDec,
			float64(deltaDec)*compress.DecompressCostPerByte(r.Meta().Codec))
	}
	return page, nil
}

// recordPrune publishes one object's row-group pruning decision: the
// counters feed /metrics, and the trace gets one scan.prune span per
// object with an event per skipped group, sitting next to the
// scan.rowgroup spans of the groups that were actually read.
func recordPrune(env *execEnv, object string, pruned []int, bytesSkipped int64) {
	reg := telemetry.RegistryFrom(env.context())
	reg.Counter(telemetry.MetricScanRowGroupsPruned).Add(int64(len(pruned)))
	reg.Counter(telemetry.MetricScanBytesSkipped).Add(bytesSkipped)
	_, sp := telemetry.StartSpan(env.context(), "scan.prune")
	sp.SetAttr("object", object)
	sp.SetAttr("rowgroups_pruned", strconv.Itoa(len(pruned)))
	sp.SetAttr("bytes_skipped", strconv.FormatInt(bytesSkipped, 10))
	for _, g := range pruned {
		sp.Event("rowgroup-pruned", "group "+strconv.Itoa(g))
	}
	sp.End()
}

// ExecuteLocal runs a plan against a local store and returns the result
// pages plus storage-side work stats. This is the storage node's embedded
// SQL engine entry point; it is exported for direct (in-process) use by
// tests and the quickstart example. The row-group scan pool defaults to
// the cost-model storage-node core count.
func ExecuteLocal(store *objstore.Store, plan *substrait.Plan) ([]*column.Page, *objstore.WorkStats, error) {
	return ExecuteLocalPool(store, plan, 0)
}

// ExecuteLocalPool is ExecuteLocal with an explicit row-group scan pool
// size; pool <= 0 selects the cost-model default, pool == 1 forces the
// sequential scanner. It runs fully uncached — the connector's fallback
// replay depends on this to bypass (never corrupt) node caches it has no
// view of.
func ExecuteLocalPool(store *objstore.Store, plan *substrait.Plan, pool int) ([]*column.Page, *objstore.WorkStats, error) {
	return executeLocalPool(store, plan, pool, false, nil)
}

// ExecuteLocalCached is ExecuteLocalPool with an explicit cache bundle,
// the entry point for cache-aware in-process callers (tests and
// BenchmarkHotCache); a nil bundle is the uncached path.
func ExecuteLocalCached(store *objstore.Store, plan *substrait.Plan, pool int, caches *cache.Storage) ([]*column.Page, *objstore.WorkStats, error) {
	if _, err := plan.Validate(); err != nil {
		return nil, nil, err
	}
	env := newExecEnv(pool)
	env.caches = caches
	return runEnv(store, plan, env)
}

// LocalStream is a lazily-drained ExecuteLocal: the compiled pipeline is
// pulled page by page instead of materialized up front, so a consumer —
// the connector's local replay path — overlaps residual execution with
// the scan exactly like the raw no-pushdown path does. The final nil
// page (or Close, when the consumer abandons the stream) tears down the
// scan workers and the ephemeral scheduler; Work is valid after either.
type LocalStream struct {
	op   exec.Operator
	env  *execEnv
	done bool
	work *objstore.WorkStats
}

// ExecuteLocalStream compiles a plan against a local store and returns
// the result stream. Like ExecuteLocalPool it runs fully uncached — the
// connector's replay paths depend on this to bypass (never corrupt) node
// caches they have no view of. pool <= 0 selects the cost-model default.
func ExecuteLocalStream(store *objstore.Store, plan *substrait.Plan, pool int) (*LocalStream, error) {
	if _, err := plan.Validate(); err != nil {
		return nil, err
	}
	env := newExecEnv(pool)
	env.sched = newScanScheduler() // vet-concurrency:allow in-process entry point; no node-wide scheduler exists to share
	env.ownSched = true
	s := &LocalStream{env: env}
	op, err := compilePlan(store, plan, env)
	if err != nil {
		s.teardown()
		return nil, err
	}
	s.op = op
	return s, nil
}

// Schema implements exec.Operator.
func (s *LocalStream) Schema() *types.Schema { return s.op.Schema() }

// Next implements exec.Operator; exhaustion and errors release the
// execution's workers.
func (s *LocalStream) Next() (*column.Page, error) {
	if s.done {
		return nil, nil
	}
	page, err := s.op.Next()
	if err != nil || page == nil {
		s.teardown()
		return nil, err
	}
	return page, nil
}

// Close releases the execution when the consumer abandons the stream
// mid-way (the engine's optional page-source cleanup hook). Idempotent.
func (s *LocalStream) Close() error {
	s.teardown()
	return nil
}

// Work returns the execution's accumulated storage-work stats; call only
// after the stream is exhausted or closed.
func (s *LocalStream) Work() *objstore.WorkStats { return s.work }

func (s *LocalStream) teardown() {
	if s.done {
		return
	}
	s.done = true
	s.env.close()
	s.env.sched.close()
	s.work = s.env.finish()
}

// executeLocalPool is the shared implementation; noPrune disables
// statistics-driven row-group pruning so differential tests (and the
// selectivity-sweep benchmark) can compare against the full scan.
func executeLocalPool(store *objstore.Store, plan *substrait.Plan, pool int, noPrune bool, caches *cache.Storage) ([]*column.Page, *objstore.WorkStats, error) {
	if _, err := plan.Validate(); err != nil {
		return nil, nil, err
	}
	env := newExecEnv(pool)
	env.noPrune = noPrune
	env.caches = caches
	return runEnv(store, plan, env)
}

// runEnv compiles and drains a validated plan under a prepared env. An
// env with no scheduler (in-process entry points, which have no node to
// share one with) gets an ephemeral one for the duration of the run.
func runEnv(store *objstore.Store, plan *substrait.Plan, env *execEnv) ([]*column.Page, *objstore.WorkStats, error) {
	if env.sched == nil {
		env.sched = newScanScheduler() // vet-concurrency:allow in-process entry point; no node-wide scheduler exists to share
		env.ownSched = true
	}
	if env.ownSched {
		defer env.sched.close()
	}
	op, err := compilePlan(store, plan, env)
	if err != nil {
		env.close()
		return nil, nil, err
	}
	pages, err := exec.Drain(op)
	env.close()
	if err != nil {
		return nil, nil, err
	}
	return pages, env.finish(), nil
}
