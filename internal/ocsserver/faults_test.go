package ocsserver

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"prestocs/internal/compress"
	"prestocs/internal/faultnet"
	"prestocs/internal/retry"
	"prestocs/internal/rpc"
	"prestocs/internal/telemetry"
)

// proxiedCluster stands up a one-node cluster with a fault proxy between
// the client and the frontend.
func proxiedCluster(t *testing.T, opts ...Option) (*Cluster, *faultnet.Proxy, *Client) {
	t.Helper()
	cluster, err := StartCluster(1)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := faultnet.New(cluster.Addr)
	if err != nil {
		cluster.Shutdown()
		t.Fatal(err)
	}
	cli := NewClient(proxy.Addr(), opts...)
	t.Cleanup(func() {
		cli.Close()
		proxy.Close()
		cluster.Shutdown()
	})
	return cluster, proxy, cli
}

func TestExecuteRetriesThroughKilledConnection(t *testing.T) {
	_, proxy, cli := proxiedCluster(t)
	ctx := context.Background()
	if err := cli.Put(ctx, "b", "o", meshObject(t, compress.None)); err != nil {
		t.Fatal(err)
	}
	// Arm a one-shot kill: the next Execute's first response bytes sever
	// the connection before the schema lands, the retry dials fresh and
	// the disarmed proxy lets it through.
	proxy.KillOnce(1)
	res, err := cli.Execute(ctx, filterPlan(t, "b", "o"))
	if err != nil {
		t.Fatalf("execute with one-shot kill = %v", err)
	}
	total := 0
	for _, p := range res.Pages {
		total += p.NumRows()
	}
	if total != 51 {
		t.Errorf("rows after retry = %d", total)
	}
	if proxy.Killed() != 1 {
		t.Errorf("killed = %d", proxy.Killed())
	}
}

func TestExecuteWithoutRetryFailsOnKill(t *testing.T) {
	_, proxy, cli := proxiedCluster(t, WithRetryPolicy(retry.None()))
	ctx := context.Background()
	if err := cli.Put(ctx, "b", "o", meshObject(t, compress.None)); err != nil {
		t.Fatal(err)
	}
	// The Put pooled a connection; an Execute on it that dies before any
	// response bytes would be healed by the transport's stale-pool redial
	// regardless of the retry policy. Use a fresh client so the stream
	// opens on a first-use connection, where the redial rule does not
	// apply and the kill must surface.
	fresh := NewClient(proxy.Addr(), WithRetryPolicy(retry.None()))
	defer fresh.Close()
	proxy.KillOnce(1)
	if _, err := fresh.Execute(ctx, filterPlan(t, "b", "o")); err == nil {
		t.Fatal("retry.None client survived a killed stream open on a fresh connection")
	}
}

func TestStreamRedialHealsPooledKillWithoutRetryPolicy(t *testing.T) {
	// Counterpart to the test above: on a pooled connection the transport
	// itself redials once when the failure precedes any response bytes,
	// so even a retry.None client survives a one-shot kill at stream
	// open. This is the satellite stale-pool fix observable end to end.
	reg := telemetry.NewRegistry()
	_, proxy, cli := proxiedCluster(t, WithRetryPolicy(retry.None()), WithMetrics(reg))
	ctx := context.Background()
	if err := cli.Put(ctx, "b", "o", meshObject(t, compress.None)); err != nil {
		t.Fatal(err)
	}
	proxy.KillOnce(1)
	res, err := cli.Execute(ctx, filterPlan(t, "b", "o"))
	if err != nil {
		t.Fatalf("execute over killed pooled conn = %v", err)
	}
	total := 0
	for _, p := range res.Pages {
		total += p.NumRows()
	}
	if total != 51 {
		t.Errorf("rows after redial = %d", total)
	}
	if n := reg.CounterValue(telemetry.MetricRPCPoolRedials); n != 1 {
		t.Errorf("pool redials = %d, want 1", n)
	}
}

func TestCancelMidStreamReleasesConnection(t *testing.T) {
	// A node that emits two chunks then stalls until its context ends
	// pins the stream genuinely mid-flight, so the cancel cannot race a
	// fully buffered result.
	addr := fakeNode(t, func(ctx context.Context, p []byte, send func([]byte) error) ([]byte, error) {
		send(schemaMsg(t))
		send(batchMsg(t, 3))
		<-ctx.Done()
		return nil, ctx.Err()
	})
	cli := frontendFor(t, addr)
	qctx, cancel := context.WithCancel(context.Background())
	rs, err := cli.ExecuteStream(qctx, filterPlan(t, "b", "o"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Next(); err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err = rs.Next()
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Next kept succeeding after cancel")
		}
	}
	if err == io.EOF || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled stream error = %v", err)
	}
	rs.Close()
	if idle := cli.IdleConns(); idle != 0 {
		t.Errorf("cancelled stream pooled its connection, idle=%d", idle)
	}
}

func TestDeadlineExceededThroughBlackhole(t *testing.T) {
	_, proxy, cli := proxiedCluster(t)
	ctx := context.Background()
	if err := cli.Put(ctx, "b", "o", meshObject(t, compress.None)); err != nil {
		t.Fatal(err)
	}
	proxy.SetBlackhole(true)
	qctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cli.Execute(qctx, filterPlan(t, "b", "o"))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("black-holed execute error = %v", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("black-holed execute returned after %v", elapsed)
	}
	if idle := cli.IdleConns(); idle != 0 {
		t.Errorf("timed-out execute pooled its connection, idle=%d", idle)
	}
}

func TestExecuteFaultIsUnavailableButDataPathHealthy(t *testing.T) {
	cluster, cli := startCluster(t, 1)
	ctx := context.Background()
	if err := cli.Put(ctx, "b", "o", meshObject(t, compress.None)); err != nil {
		t.Fatal(err)
	}
	cluster.Nodes[0].SetExecuteFault(errors.New("compute unit offline"))
	_, err := cli.Execute(ctx, filterPlan(t, "b", "o"))
	if !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("faulted execute error = %v", err)
	}
	// The storage path is still healthy: the raw-scan fallback can GET.
	data, _, err := cli.Get(ctx, "b", "o")
	if err != nil || len(data) == 0 {
		t.Fatalf("Get during execute fault = %d bytes, %v", len(data), err)
	}
	// Clearing the fault restores pushdown.
	cluster.Nodes[0].SetExecuteFault(nil)
	if _, err := cli.Execute(ctx, filterPlan(t, "b", "o")); err != nil {
		t.Fatalf("execute after clearing fault = %v", err)
	}
}

func TestFrontendRetriesNodeStreamOpen(t *testing.T) {
	// Node behind a fault proxy; the frontend's fan-out retry re-opens the
	// node stream when the first attempt dies before any chunk flows.
	node := NewStorageNode(0)
	nodeAddr, err := node.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	proxy, err := faultnet.New(nodeAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	front, err := NewFrontend([]string{proxy.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := front.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	cli := NewClient(addr, WithRetryPolicy(retry.None()))
	defer cli.Close()

	ctx := context.Background()
	if err := cli.Put(ctx, "b", "o", meshObject(t, compress.None)); err != nil {
		t.Fatal(err)
	}
	proxy.KillOnce(1)
	// The client does not retry; recovery must come from the frontend.
	res, err := cli.Execute(ctx, filterPlan(t, "b", "o"))
	if err != nil {
		t.Fatalf("execute with killed node conn = %v", err)
	}
	total := 0
	for _, p := range res.Pages {
		total += p.NumRows()
	}
	if total != 51 {
		t.Errorf("rows = %d", total)
	}
	if proxy.Killed() != 1 {
		t.Errorf("killed = %d", proxy.Killed())
	}
}
