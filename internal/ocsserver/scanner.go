package ocsserver

import (
	"strconv"
	"sync"
	"sync/atomic"

	"prestocs/internal/column"
	"prestocs/internal/exec"
	"prestocs/internal/parquetlite"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// scanSlot is one row group's outcome, delivered to its ordered slot.
type scanSlot struct {
	page *column.Page
	err  error
}

// parallelScan scans the given row groups with a bounded worker pool and
// merges results back in row-group order, so downstream operators see the
// exact page sequence the sequential scanner would produce.
//
// Concurrency design:
//   - Each slot channel has capacity 1 and exactly one producer, so a
//     worker can always deliver without blocking — abandoning the source
//     mid-stream (leaf Limit) can never wedge a worker.
//   - Workers claim row-group indices from an atomic cursor, but only
//     after taking a token; the consumer returns one token per page it
//     consumes. That bounds scan-ahead to roughly 2x the pool size, so a
//     slow consumer does not force the whole object into memory.
//   - Every worker opens its own parquetlite.Reader over the shared file
//     image (with the already-decoded footer injected, so no worker
//     re-decodes it); readers carry per-instance I/O counters, so sharing
//     one across goroutines would race. Deltas merge into env.stats per
//     row group, keeping partial stats correct on early stop.
//   - env.close() (run by the executor or node handler after the drain)
//     closes stopCh and waits for the pool, bounding wasted work after
//     abandonment to at most one in-flight row group per worker.
//
// Reads go through env.readGroup, so chunks land in (and are served
// from) the node's hot-page cache; objKey and twoTouch carry the cache
// key and the admission mode compileRead derived from prune selectivity.
func parallelScan(env *execEnv, data []byte, meta *parquetlite.FileMeta, objKey string, groups, cols []int, twoTouch bool, outSchema *types.Schema) exec.Operator {
	workers := env.scanPool
	if workers > len(groups) {
		workers = len(groups)
	}
	slots := make([]chan scanSlot, len(groups))
	for i := range slots {
		slots[i] = make(chan scanSlot, 1)
	}
	lookahead := 2 * workers
	if lookahead > len(groups) {
		lookahead = len(groups)
	}
	tokens := make(chan struct{}, lookahead)
	for i := 0; i < lookahead; i++ {
		tokens <- struct{}{}
	}
	stopCh := make(chan struct{})
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(func() { close(stopCh) }) }
	var cursor atomic.Int64
	var wg sync.WaitGroup

	// Scan-pool observability: queued counts row groups not yet claimed by
	// a worker, active counts row groups being read right now, scanned is
	// the lifetime row-group total. Gauges are shared across concurrent
	// queries, so all updates are deltas; the closer returns the unclaimed
	// remainder when a scan stops early (leaf Limit).
	reg := telemetry.RegistryFrom(env.context())
	queued := reg.Gauge(telemetry.MetricScanPoolQueued)
	active := reg.Gauge(telemetry.MetricScanPoolActive)
	scanned := reg.Counter(telemetry.MetricScanPoolRowGroups)
	queued.Add(int64(len(groups)))

	projSchema := meta.Schema.Project(cols)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := parquetlite.NewReaderWithMeta(data, meta)
			if err != nil {
				// The image parsed once already in compileRead, so this is
				// near-impossible; deliver the error to every slot this
				// worker would have owned rather than leaving gaps.
				for {
					select {
					case <-stopCh:
						return
					case <-tokens:
					}
					idx := int(cursor.Add(1)) - 1
					if idx >= len(groups) {
						return
					}
					queued.Add(-1)
					slots[idx] <- scanSlot{err: err}
				}
			}
			for {
				select {
				case <-stopCh:
					return
				case <-tokens:
				}
				idx := int(cursor.Add(1)) - 1
				if idx >= len(groups) {
					return
				}
				queued.Add(-1)
				active.Add(1)
				_, sp := telemetry.StartSpan(env.context(), "scan.rowgroup")
				sp.SetAttr("group", strconv.Itoa(groups[idx]))
				page, err := env.readGroup(r, objKey, groups[idx], cols, projSchema, twoTouch)
				sp.End()
				active.Add(-1)
				scanned.Inc()
				slots[idx] <- scanSlot{page: page, err: err}
			}
		}()
	}

	env.closers = append(env.closers, func() {
		stop()
		wg.Wait()
		// Return the unclaimed remainder so the queue-depth gauge does not
		// drift when a scan is abandoned early.
		if claimed := int(cursor.Load()); claimed < len(groups) {
			queued.Add(int64(claimed - len(groups)))
		}
	})

	next := 0
	return exec.NewFuncSource(outSchema, func() (*column.Page, error) {
		if next >= len(groups) {
			return nil, nil
		}
		s := <-slots[next]
		next++
		if s.err != nil {
			stop()
			return nil, s.err
		}
		// Refill cannot block: at most `lookahead` tokens are ever
		// outstanding and each consumed slot returns exactly one.
		tokens <- struct{}{}
		return s.page, nil
	})
}
