package ocsserver

import (
	"strconv"

	"prestocs/internal/column"
	"prestocs/internal/exec"
	"prestocs/internal/parquetlite"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// scanSlot is one row group's outcome, delivered to its ordered slot.
type scanSlot struct {
	page *column.Page
	err  error
}

// parallelScan scans the given row groups through the node-wide fair
// scheduler and merges results back in row-group order, so downstream
// operators see the exact page sequence the sequential scanner would
// produce.
//
// Concurrency design:
//   - The scan spawns no goroutines of its own (the vet-concurrency gate
//     enforces this): it registers a task queue on env.sched and submits
//     one task per row group. The scheduler's workers round-robin across
//     all live queues, so this scan competes fairly with every other
//     query on the node instead of owning a private pool.
//   - Each slot channel has capacity 1 and exactly one producer, so a
//     task can always deliver without blocking — abandoning the source
//     mid-stream (leaf Limit) can never wedge a worker.
//   - Submission is lookahead-bounded: min(2 x pool, len(groups)) tasks
//     are outstanding at first and the consumer submits one more per page
//     it consumes, so a slow consumer (or a backpressured stream) does
//     not force the whole object into memory — and does not flood the
//     shared scheduler with row groups it is not ready for.
//   - Every task opens its own parquetlite.Reader over the shared file
//     image (with the already-decoded footer injected, so nothing is
//     re-parsed); readers carry per-instance I/O counters, so sharing one
//     across workers would race. Deltas merge into env.stats per row
//     group, keeping partial stats correct on early stop.
//   - env.close() (run by the executor or node handler after the drain)
//     closes the queue: pending tasks are dropped and in-flight ones
//     waited out, bounding wasted work after abandonment to at most the
//     scheduler's worker count.
//
// Reads go through env.readGroup, so chunks land in (and are served
// from) the node's hot-page cache; objKey and twoTouch carry the cache
// key and the admission mode compileRead derived from prune selectivity.
func parallelScan(env *execEnv, data []byte, meta *parquetlite.FileMeta, objKey string, groups, cols []int, twoTouch bool, outSchema *types.Schema) exec.Operator {
	slots := make([]chan scanSlot, len(groups))
	for i := range slots {
		slots[i] = make(chan scanSlot, 1)
	}
	lookahead := 2 * env.scanPool
	if lookahead > len(groups) {
		lookahead = len(groups)
	}

	// Scan observability: queued counts row groups submitted but not yet
	// claimed by a worker, active counts row groups being read right now,
	// scanned is the lifetime row-group total. Gauges are shared across
	// concurrent queries, so all updates are deltas.
	reg := telemetry.RegistryFrom(env.context())
	queued := reg.Gauge(telemetry.MetricScanPoolQueued)
	active := reg.Gauge(telemetry.MetricScanPoolActive)
	scanned := reg.Counter(telemetry.MetricScanPoolRowGroups)

	q := env.sched.register(env.scanPool, reg.Gauge(telemetry.MetricScanSchedQueries))
	projSchema := meta.Schema.Project(cols)

	submit := func(idx int) {
		slot := slots[idx]
		rg := groups[idx]
		task := scanTask{
			run: func() {
				queued.Add(-1)
				if q.stopped() {
					// The query was abandoned or killed; skip the read and
					// still settle the slot so nothing ever dangles.
					slot <- scanSlot{err: errSchedulerClosed}
					return
				}
				r, err := parquetlite.NewReaderWithMeta(data, meta)
				if err != nil {
					// The image parsed once already in compileRead, so this
					// is near-impossible; settle the slot with the error.
					slot <- scanSlot{err: err}
					return
				}
				active.Add(1)
				_, sp := telemetry.StartSpan(env.context(), "scan.rowgroup")
				sp.SetAttr("group", strconv.Itoa(rg))
				page, err := env.readGroup(r, objKey, rg, cols, projSchema, twoTouch)
				sp.End()
				active.Add(-1)
				scanned.Inc()
				slot <- scanSlot{page: page, err: err}
			},
			abort: func(err error) {
				queued.Add(-1)
				slot <- scanSlot{err: err}
			},
		}
		queued.Add(1)
		if !q.submit(task) {
			task.abort(errSchedulerClosed)
		}
	}

	env.closers = append(env.closers, func() {
		// Pending tasks are dropped (their slots stay empty, but the
		// consumer is gone too); in-flight ones are waited out so their
		// stats deltas land before env.finish runs.
		dropped := q.close()
		queued.Add(int64(-dropped))
	})

	submitted := 0
	for submitted < lookahead {
		submit(submitted)
		submitted++
	}
	next := 0
	return exec.NewFuncSource(outSchema, func() (*column.Page, error) {
		if next >= len(groups) {
			return nil, nil
		}
		s := <-slots[next]
		next++
		if s.err != nil {
			return nil, s.err
		}
		// Keep the lookahead window full: one new submission per page
		// consumed replaces the token pool the private-worker design used.
		if submitted < len(groups) {
			submit(submitted)
			submitted++
		}
		return s.page, nil
	})
}
