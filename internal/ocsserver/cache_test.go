package ocsserver

import (
	"math/rand"
	"testing"

	"prestocs/internal/cache"
	"prestocs/internal/column"
	"prestocs/internal/expr"
	"prestocs/internal/objstore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/substrait"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// constObject builds a small object whose every x value is v, so a result
// unambiguously identifies which object version produced it.
func constObject(t testing.TB, v int64, rows int) []byte {
	t.Helper()
	schema := types.NewSchema(types.Column{Name: "x", Type: types.Int64})
	page := column.NewPage(schema)
	for i := 0; i < rows; i++ {
		page.AppendRow(types.IntValue(v))
	}
	img, err := parquetlite.WritePages(schema, parquetlite.WriterOptions{RowGroupSize: 16}, page)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestCacheDifferentialExecution is the acceptance differential for the
// caching tier: cached execution (cold, then warm from the footer and
// page caches) must return byte-identical pages to uncached execution —
// NULLs, NaNs and page boundaries included — for randomized predicates,
// on both the sequential and the parallel scanner.
func TestCacheDifferentialExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	store := objstore.NewStore()
	store.Put("b", "o", pruneObject(t, rng))
	caches := cache.NewStorage(1<<20, 8<<20)
	reg := telemetry.NewRegistry()
	caches.Instrument(reg, "node", "test")

	for trial := 0; trial < 100; trial++ {
		pred := randPrunePredicate(rng, 3)
		read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: pruneSchema()}
		plan := substrait.NewPlan(&substrait.FilterRel{Input: read, Condition: pred})
		pool := 1
		if trial%5 == 0 {
			pool = 4
		}
		uncached, _, errU := ExecuteLocalPool(store, plan, pool)
		cold, _, errC := ExecuteLocalCached(store, plan, pool, caches)
		warm, _, errW := ExecuteLocalCached(store, plan, pool, caches)
		if (errU == nil) != (errC == nil) || (errU == nil) != (errW == nil) {
			t.Fatalf("trial %d (%s): uncached err=%v cold err=%v warm err=%v",
				trial, pred.String(), errU, errC, errW)
		}
		if errU != nil {
			continue
		}
		want := renderPages(uncached)
		if got := renderPages(cold); got != want {
			t.Fatalf("trial %d: predicate %s: cold cached output differs from uncached\ncached:\n%s\nuncached:\n%s",
				trial, pred.String(), got, want)
		}
		if got := renderPages(warm); got != want {
			t.Fatalf("trial %d: predicate %s: warm cached output differs from uncached\ncached:\n%s\nuncached:\n%s",
				trial, pred.String(), got, want)
		}
	}
	if h := reg.CounterValue(telemetry.MetricFooterCacheHits, "node", "test"); h == 0 {
		t.Error("footer cache never hit across 100 warm re-executions")
	}
	if h := reg.CounterValue(telemetry.MetricPageCacheHits, "node", "test"); h == 0 {
		t.Error("page cache never hit across 100 warm re-executions")
	}
}

// TestCacheInvalidationOnRePut proves version-keyed invalidation end to
// end: after an object is overwritten, a warm cache must serve the new
// bytes, byte-identical to an uncached read — never a stale page.
func TestCacheInvalidationOnRePut(t *testing.T) {
	store := objstore.NewStore()
	store.Put("b", "o", constObject(t, 1, 64))
	caches := cache.NewStorage(1<<20, 8<<20)

	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: types.NewSchema(types.Column{Name: "x", Type: types.Int64})}
	cond, err := expr.NewCompare(expr.Ge, expr.Col(0, "x", types.Int64), expr.Lit(types.IntValue(0)))
	if err != nil {
		t.Fatal(err)
	}
	plan := substrait.NewPlan(&substrait.FilterRel{Input: read, Condition: cond})

	run := func(label string) string {
		t.Helper()
		pages, _, err := ExecuteLocalCached(store, plan, 1, caches)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return renderPages(pages)
	}
	v1 := run("v1 cold")
	if got := run("v1 warm"); got != v1 {
		t.Fatal("warm v1 read differs from cold v1 read")
	}

	// Overwrite with all-2s. The generation key changes, so the warm
	// cache must not serve any v1 footer or page.
	store.Put("b", "o", constObject(t, 2, 64))
	uncached, _, err := ExecuteLocalPool(store, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := renderPages(uncached)
	if want == v1 {
		t.Fatal("test bug: v2 object renders identically to v1")
	}
	if got := run("v2 after re-put"); got != want {
		t.Fatalf("cached read after re-put differs from uncached\ncached:\n%s\nuncached:\n%s", got, want)
	}
	if got := run("v2 warm"); got != want {
		t.Fatal("warm v2 read differs from uncached v2 read")
	}
}
