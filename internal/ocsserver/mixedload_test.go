package ocsserver

import (
	"context"
	"io"
	"testing"
	"time"

	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/parquetlite"
	"prestocs/internal/substrait"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

// bigMeshObject writes rows of the mesh schema in 64-row groups: enough
// chunks that a full scan far exceeds any small credit window.
func bigMeshObject(t *testing.T, rows int) []byte {
	t.Helper()
	p := column.NewPage(meshSchema())
	for i := 0; i < rows; i++ {
		p.AppendRow(
			types.IntValue(int64(i%10)),
			types.FloatValue(float64(i)/100),
			types.FloatValue(float64(i)),
		)
	}
	data, err := parquetlite.WritePages(meshSchema(), parquetlite.WriterOptions{Codec: compress.None, RowGroupSize: 64}, p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// windowedCluster starts a one-node cluster with a shared registry and a
// small credit window, so backpressure effects are observable.
func windowedCluster(t *testing.T, window int) (*Cluster, *Client, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cluster, err := StartClusterWith(1, ClusterConfig{Metrics: reg, ScanPool: 2, StreamWindow: window})
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(cluster.Addr, WithMetrics(reg))
	t.Cleanup(func() {
		cli.Close()
		cluster.Shutdown()
	})
	return cluster, cli, reg
}

// TestSlowClientBoundedNodeMemory holds a stream open without reading and
// checks the credit window caps in-flight chunks end to end: the node
// stalls after its window, the frontend after its own, and the scan does
// not run ahead of either — node memory stays bounded by the window, not
// by the result size.
func TestSlowClientBoundedNodeMemory(t *testing.T) {
	const window = 2
	_, cli, reg := windowedCluster(t, window)
	if err := cli.Put(context.Background(), "b", "o", bigMeshObject(t, 4096)); err != nil {
		t.Fatal(err)
	}
	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: meshSchema()}
	rs, err := cli.ExecuteStream(context.Background(), substrait.NewPlan(read))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, err := rs.Next(); err != nil {
		t.Fatal(err)
	}
	// Stop reading. Give producers time to run as far as credits allow.
	time.Sleep(300 * time.Millisecond)
	// Two server-side streams share the registry (node->frontend and
	// frontend->client): each may hold up to its window unacked.
	if got := reg.GaugeValue(telemetry.MetricRPCStreamInflight); got > 2*window {
		t.Errorf("inflight chunks while stalled = %d, want <= %d", got, 2*window)
	}
	if reg.CounterValue(telemetry.MetricRPCStreamStalls) == 0 {
		t.Error("producers never stalled despite a stopped reader")
	}
	rows := 64 // first page already consumed
	for {
		p, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows += p.NumRows()
	}
	if rows != 4096 {
		t.Errorf("rows after resume = %d, want 4096", rows)
	}
	waitGaugeZero(t, reg, telemetry.MetricRPCStreamInflight)
}

// TestKilledClientMidStreamReleasesScanSlots kills the application
// connection after one chunk and checks the whole chain unwinds: the
// frontend's producer dies on the broken pipe, the node's stream is torn
// down, queued row-group tasks leave the shared scheduler, and the next
// query runs normally.
func TestKilledClientMidStreamReleasesScanSlots(t *testing.T) {
	_, cli, reg := windowedCluster(t, 1)
	if err := cli.Put(context.Background(), "b", "o", bigMeshObject(t, 4096)); err != nil {
		t.Fatal(err)
	}
	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: meshSchema()}
	rs, err := cli.ExecuteStream(context.Background(), substrait.NewPlan(read))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Next(); err != nil {
		t.Fatal(err)
	}
	rs.Close() // kill the stream with thousands of rows unread

	waitGaugeZero(t, reg, telemetry.MetricRPCStreamInflight)
	waitGaugeZero(t, reg, telemetry.MetricScanPoolQueued)
	waitGaugeZero(t, reg, telemetry.MetricScanPoolActive)
	waitGaugeZero(t, reg, telemetry.MetricScanSchedQueries)

	// The node must serve the next query from its (still shared)
	// scheduler without leftover tasks in the way.
	res, err := cli.Execute(context.Background(), filterPlan(t, "b", "o"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pages {
		total += p.NumRows()
	}
	if total == 0 {
		t.Error("follow-up query returned no rows")
	}
}

func waitGaugeZero(t *testing.T, reg *telemetry.Registry, name string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.GaugeValue(name) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("gauge %s stuck at %d", name, reg.GaugeValue(name))
}
