package ocsserver

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"prestocs/internal/arrowlite"
	"prestocs/internal/column"
	"prestocs/internal/compress"
	"prestocs/internal/expr"
	"prestocs/internal/objstore"
	"prestocs/internal/rpc"
	"prestocs/internal/substrait"
	"prestocs/internal/types"
)

func TestExecuteStreamIncremental(t *testing.T) {
	_, cli := startCluster(t, 1)
	if err := cli.Put(context.Background(), "b", "o", meshObject(t, compress.None)); err != nil {
		t.Fatal(err)
	}
	// Full scan: 200 rows in 4 row groups of 64.
	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: meshSchema()}
	rs, err := cli.ExecuteStream(context.Background(), substrait.NewPlan(read))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if rs.Schema().IndexOf("x") < 0 {
		t.Fatalf("stream schema = %v", rs.Schema())
	}
	var pages, rows int
	for {
		p, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pages++
		rows += p.NumRows()
	}
	if rows != 200 {
		t.Errorf("streamed rows = %d", rows)
	}
	// One Arrow batch per row group: the node must not have buffered the
	// result into one big chunk.
	if pages != 4 {
		t.Errorf("streamed batches = %d, want 4 (one per row group)", pages)
	}
	if rs.Stats().BytesRead <= 0 || rs.ArrowBytes() <= 0 {
		t.Errorf("trailer stats missing: %+v bytes=%d", rs.Stats(), rs.ArrowBytes())
	}
}

func TestExecuteStreamChunkRowsCoalescing(t *testing.T) {
	cluster, cli := startCluster(t, 1)
	cluster.Nodes[0].ChunkRows = 1000 // larger than the object: one chunk
	if err := cli.Put(context.Background(), "b", "o", meshObject(t, compress.None)); err != nil {
		t.Fatal(err)
	}
	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: meshSchema()}
	rs, err := cli.ExecuteStream(context.Background(), substrait.NewPlan(read))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	var pages, rows int
	for {
		p, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pages++
		rows += p.NumRows()
	}
	if pages != 1 || rows != 200 {
		t.Errorf("coalesced stream = %d pages / %d rows, want 1 / 200", pages, rows)
	}
}

func TestExecuteStreamAbandonReleasesCleanly(t *testing.T) {
	_, cli := startCluster(t, 1)
	if err := cli.Put(context.Background(), "b", "o", meshObject(t, compress.None)); err != nil {
		t.Fatal(err)
	}
	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: meshSchema()}
	rs, err := cli.ExecuteStream(context.Background(), substrait.NewPlan(read))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Next(); err != nil {
		t.Fatal(err)
	}
	rs.Close() // abandon after one page
	// The client must remain usable on a fresh connection.
	res, err := cli.Execute(context.Background(), filterPlan(t, "b", "o"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range res.Pages {
		total += p.NumRows()
	}
	if total != 51 {
		t.Errorf("rows after abandoned stream = %d", total)
	}
}

func TestNewFrontendZeroNodes(t *testing.T) {
	if _, err := NewFrontend(nil); err == nil {
		t.Fatal("frontend with zero storage nodes must be rejected")
	}
	if _, err := StartCluster(0); err == nil {
		t.Fatal("zero-node cluster must be rejected")
	}
}

// fakeNode stands in for a storage node whose Execute stream misbehaves.
func fakeNode(t *testing.T, handler rpc.StreamHandler) string {
	t.Helper()
	s := rpc.NewServer()
	s.RegisterStream(NodeMethodExecute, handler)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return addr
}

func frontendFor(t *testing.T, nodeAddr string) *Client {
	t.Helper()
	front, err := NewFrontend([]string{nodeAddr})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := front.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(addr)
	t.Cleanup(func() {
		cli.Close()
		front.Close()
	})
	return cli
}

func schemaMsg(t *testing.T) []byte {
	t.Helper()
	msg, err := arrowlite.AppendSchema(nil, meshSchema())
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

func batchMsg(t *testing.T, rows int) []byte {
	t.Helper()
	p := column.NewPage(meshSchema())
	for i := 0; i < rows; i++ {
		p.AppendRow(types.IntValue(int64(i)), types.FloatValue(float64(i)), types.FloatValue(float64(i)))
	}
	msg, err := arrowlite.AppendBatch(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

func TestStreamErrorFrameAfterBatches(t *testing.T) {
	// The node streams a schema and two good batches, then fails: the
	// query must surface the error, not hang or return a short result.
	addr := fakeNode(t, func(_ context.Context, p []byte, send func([]byte) error) ([]byte, error) {
		send(schemaMsg(t))
		send(batchMsg(t, 3))
		send(batchMsg(t, 3))
		return nil, fmt.Errorf("disk on fire")
	})
	cli := frontendFor(t, addr)
	_, err := cli.Execute(context.Background(), filterPlan(t, "b", "o"))
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("mid-stream node failure = %v", err)
	}
}

func TestStreamNodeDiesMidStream(t *testing.T) {
	// The node sends the schema and one batch, then its process dies
	// (connection drops with no end frame). The client must get an error.
	nodeSrv := rpc.NewServer()
	proceed := make(chan struct{})
	nodeSrv.RegisterStream(NodeMethodExecute, func(_ context.Context, p []byte, send func([]byte) error) ([]byte, error) {
		send(schemaMsg(t))
		send(batchMsg(t, 3))
		<-proceed // hold the stream open until the server is torn down
		return nil, fmt.Errorf("unreachable")
	})
	addr, err := nodeSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli := frontendFor(t, addr)
	rs, err := cli.ExecuteStream(context.Background(), filterPlan(t, "b", "o"))
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if _, err := rs.Next(); err != nil {
		t.Fatal(err)
	}
	// Kill the node's connections while the stream is mid-flight, then
	// unblock the handler so Close can finish.
	close(proceed)
	nodeSrv.Close()
	for {
		_, err := rs.Next()
		if err == io.EOF {
			t.Fatal("dead node produced a clean end of stream")
		}
		if err != nil {
			break // surfaced as a query error — correct
		}
	}
}

func TestStreamCorruptChunkPayload(t *testing.T) {
	// A node that emits garbage instead of a schema message must produce
	// a decode error at the client, not a hang.
	addr := fakeNode(t, func(_ context.Context, p []byte, send func([]byte) error) ([]byte, error) {
		send([]byte{0xde, 0xad})
		return nil, nil
	})
	cli := frontendFor(t, addr)
	if _, err := cli.Execute(context.Background(), filterPlan(t, "b", "o")); err == nil {
		t.Fatal("corrupt schema chunk accepted")
	}
}

func TestStreamEmptyStreamNoSchema(t *testing.T) {
	// A node that ends the stream without any chunk violates the result
	// protocol; the client must reject it.
	addr := fakeNode(t, func(_ context.Context, p []byte, send func([]byte) error) ([]byte, error) {
		return nil, nil
	})
	cli := frontendFor(t, addr)
	if _, err := cli.Execute(context.Background(), filterPlan(t, "b", "o")); err == nil {
		t.Fatal("schema-less stream accepted")
	}
}

// rowsOf flattens pages into printable rows for order-sensitive
// comparison.
func rowsOf(pages []*column.Page) []string {
	var out []string
	for _, p := range pages {
		for i := 0; i < p.NumRows(); i++ {
			out = append(out, fmt.Sprint(p.Row(i)))
		}
	}
	return out
}

// TestParallelScanMatchesSequential is the pushdown-soundness property
// test: for every pushdown configuration and codec, the parallel
// row-group scanner must return exactly the rows, in exactly the order,
// of the sequential scanner.
func TestParallelScanMatchesSequential(t *testing.T) {
	baseRead := func() *substrait.ReadRel {
		return &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: meshSchema()}
	}
	between := func(t *testing.T) expr.Expr {
		cond, err := expr.NewBetween(expr.Col(1, "x", types.Float64),
			expr.Lit(types.FloatValue(0.5)), expr.Lit(types.FloatValue(1.5)))
		if err != nil {
			t.Fatal(err)
		}
		return cond
	}
	configs := []struct {
		name string
		plan func(t *testing.T) *substrait.Plan
	}{
		{"scan", func(t *testing.T) *substrait.Plan {
			return substrait.NewPlan(baseRead())
		}},
		{"projection", func(t *testing.T) *substrait.Plan {
			r := baseRead()
			r.Projection = []int{2, 0}
			return substrait.NewPlan(r)
		}},
		{"filter", func(t *testing.T) *substrait.Plan {
			return substrait.NewPlan(&substrait.FilterRel{Input: baseRead(), Condition: between(t)})
		}},
		{"filter+project", func(t *testing.T) *substrait.Plan {
			f := &substrait.FilterRel{Input: baseRead(), Condition: between(t)}
			mod, err := expr.NewArith(expr.Mod, expr.Col(0, "vertex_id", types.Int64), expr.Lit(types.IntValue(3)))
			if err != nil {
				t.Fatal(err)
			}
			return substrait.NewPlan(&substrait.ProjectRel{
				Input:       f,
				Expressions: []expr.Expr{mod, expr.Col(2, "e", types.Float64)},
				Names:       []string{"m", "e"},
			})
		}},
		{"aggregate", func(t *testing.T) *substrait.Plan {
			return substrait.NewPlan(&substrait.AggregateRel{
				Input:     baseRead(),
				GroupKeys: []int{0},
				Measures: []substrait.Measure{
					{Func: substrait.AggSum, Arg: 2, Name: "sum_e"},
					{Func: substrait.AggCountStar, Arg: -1, Name: "cnt"},
				},
			})
		}},
		{"filter+aggregate", func(t *testing.T) *substrait.Plan {
			f := &substrait.FilterRel{Input: baseRead(), Condition: between(t)}
			return substrait.NewPlan(&substrait.AggregateRel{
				Input:     f,
				GroupKeys: []int{0},
				Measures:  []substrait.Measure{{Func: substrait.AggMin, Arg: 1, Name: "min_x"}},
			})
		}},
		{"topn", func(t *testing.T) *substrait.Plan {
			return substrait.NewPlan(&substrait.FetchRel{
				Input: &substrait.SortRel{Input: baseRead(), Keys: []substrait.SortKey{{Column: 2, Descending: true}}},
				Count: 9,
			})
		}},
		{"limit", func(t *testing.T) *substrait.Plan {
			return substrait.NewPlan(&substrait.FetchRel{Input: baseRead(), Count: 70})
		}},
	}
	for _, codec := range []compress.Codec{compress.None, compress.Snappy, compress.Gzip} {
		store := objstore.NewStore()
		store.Put("b", "o", meshObject(t, codec))
		for _, cfg := range configs {
			t.Run(fmt.Sprintf("%s/%s", codec, cfg.name), func(t *testing.T) {
				seqPages, _, err := ExecuteLocalPool(store, cfg.plan(t), 1)
				if err != nil {
					t.Fatal(err)
				}
				parPages, _, err := ExecuteLocalPool(store, cfg.plan(t), 8)
				if err != nil {
					t.Fatal(err)
				}
				seq, par := rowsOf(seqPages), rowsOf(parPages)
				if len(seq) != len(par) {
					t.Fatalf("row counts differ: sequential=%d parallel=%d", len(seq), len(par))
				}
				for i := range seq {
					if seq[i] != par[i] {
						t.Fatalf("row %d differs:\n  sequential: %s\n  parallel:   %s", i, seq[i], par[i])
					}
				}
			})
		}
	}
}

// TestParallelScanStatsComplete checks that a fully drained parallel scan
// reports the same I/O totals as the sequential scan.
func TestParallelScanStatsComplete(t *testing.T) {
	store := objstore.NewStore()
	store.Put("b", "o", meshObject(t, compress.Snappy))
	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: meshSchema()}
	_, seqStats, err := ExecuteLocalPool(store, substrait.NewPlan(read), 1)
	if err != nil {
		t.Fatal(err)
	}
	_, parStats, err := ExecuteLocalPool(store, substrait.NewPlan(read), 4)
	if err != nil {
		t.Fatal(err)
	}
	if seqStats.BytesRead != parStats.BytesRead || seqStats.BytesDecompressed != parStats.BytesDecompressed {
		t.Errorf("I/O stats differ: sequential=%+v parallel=%+v", seqStats, parStats)
	}
}
