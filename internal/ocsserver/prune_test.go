package ocsserver

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"prestocs/internal/column"
	"prestocs/internal/exec"
	"prestocs/internal/expr"
	"prestocs/internal/objstore"
	"prestocs/internal/parquetlite"
	"prestocs/internal/substrait"
	"prestocs/internal/telemetry"
	"prestocs/internal/types"
)

func pruneSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Type: types.Int64},
		types.Column{Name: "f", Type: types.Float64},
		types.Column{Name: "n", Type: types.Float64},
	)
}

// pruneObject builds a 12-row-group object designed to make pruning
// decisions interesting: id ascending (tight per-group ranges), f random
// with NULLs, NaNs and infinities, n entirely NULL.
func pruneObject(t testing.TB, rng *rand.Rand) []byte {
	t.Helper()
	schema := pruneSchema()
	page := column.NewPage(schema)
	for i := 0; i < 12*16; i++ {
		f := types.FloatValue(float64(rng.Intn(41)-20) / 2)
		switch rng.Intn(10) {
		case 0:
			f = types.NullValue(types.Float64)
		case 1:
			f = types.FloatValue(math.NaN())
		case 2:
			f = types.FloatValue(math.Inf(1 - 2*rng.Intn(2)))
		}
		page.AppendRow(types.IntValue(int64(i)), f, types.NullValue(types.Float64))
	}
	img, err := parquetlite.WritePages(schema, parquetlite.WriterOptions{RowGroupSize: 16}, page)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// randPrunePredicate builds a random well-typed predicate over the three
// columns, exercising every construct the range analyzer understands
// (and some it must ignore).
func randPrunePredicate(rng *rand.Rand, depth int) expr.Expr {
	idc := func() expr.Expr { return expr.Col(0, "id", types.Int64) }
	fc := func() expr.Expr { return expr.Col(1, "f", types.Float64) }
	nc := func() expr.Expr { return expr.Col(2, "n", types.Float64) }
	randCol := func() expr.Expr {
		switch rng.Intn(3) {
		case 0:
			return idc()
		case 1:
			return fc()
		default:
			return nc()
		}
	}
	randLit := func(c expr.Expr) expr.Expr {
		if c.Type() == types.Int64 {
			if rng.Intn(8) == 0 {
				return expr.Lit(types.NullValue(types.Int64))
			}
			return expr.Lit(types.IntValue(int64(rng.Intn(240) - 24)))
		}
		switch rng.Intn(8) {
		case 0:
			return expr.Lit(types.NullValue(types.Float64))
		case 1:
			return expr.Lit(types.FloatValue(math.NaN()))
		default:
			return expr.Lit(types.FloatValue(float64(rng.Intn(41)-20) / 2))
		}
	}
	if depth <= 0 || rng.Intn(3) == 0 {
		c := randCol()
		switch rng.Intn(4) {
		case 0:
			return &expr.IsNull{E: c, Negate: rng.Intn(2) == 0}
		case 1:
			b, err := expr.NewBetween(c, randLit(c), randLit(c))
			if err != nil {
				return &expr.IsNull{E: c}
			}
			return b
		default:
			ops := []expr.CmpOp{expr.Eq, expr.Ne, expr.Lt, expr.Le, expr.Gt, expr.Ge}
			l, r := c, randLit(c)
			if rng.Intn(2) == 0 {
				l, r = r, l
			}
			cmp, err := expr.NewCompare(ops[rng.Intn(len(ops))], l, r)
			if err != nil {
				return &expr.IsNull{E: c}
			}
			return cmp
		}
	}
	switch rng.Intn(3) {
	case 0:
		n, err := expr.NewNot(randPrunePredicate(rng, depth-1))
		if err != nil {
			return randPrunePredicate(rng, depth-1)
		}
		return n
	default:
		op := expr.And
		if rng.Intn(2) == 0 {
			op = expr.Or
		}
		l, err := expr.NewLogic(op, randPrunePredicate(rng, depth-1), randPrunePredicate(rng, depth-1))
		if err != nil {
			return randPrunePredicate(rng, depth-1)
		}
		return l
	}
}

// renderPages flattens a page sequence into a canonical string: page
// boundaries, null masks and exact values (NaN included) all preserved,
// so two runs compare byte-identically.
func renderPages(pages []*column.Page) string {
	var b strings.Builder
	for pi, p := range pages {
		fmt.Fprintf(&b, "page %d (%d rows):\n", pi, p.NumRows())
		for i := 0; i < p.NumRows(); i++ {
			for _, v := range p.Row(i) {
				if v.Null {
					b.WriteString("NULL|")
					continue
				}
				// %b renders floats exactly (NaN payloads aside).
				if v.Kind == types.Float64 {
					fmt.Fprintf(&b, "%b|", v.F)
				} else {
					fmt.Fprintf(&b, "%s|", v.String())
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestPruneDifferentialProperty is the correctness guard for zone-map
// pruning: for randomized predicates over data with NULL, NaN and ±Inf
// edge cases, the pruned execution must return byte-identical pages to
// the full (noPrune) execution. exec.Filter never emits an all-filtered
// page, so a sound pruner changes nothing about the output sequence.
func TestPruneDifferentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	store := objstore.NewStore()
	store.Put("b", "o", pruneObject(t, rng))
	schema := pruneSchema()
	for trial := 0; trial < 250; trial++ {
		pred := randPrunePredicate(rng, 3)
		read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: schema}
		plan := substrait.NewPlan(&substrait.FilterRel{Input: read, Condition: pred})
		// Pool 1 is the sequential scanner; every 5th trial also runs the
		// parallel scanner, whose merge must preserve file order.
		pool := 1
		if trial%5 == 0 {
			pool = 4
		}
		pruned, _, errP := executeLocalPool(store, plan, pool, false, nil)
		full, _, errF := executeLocalPool(store, plan, pool, true, nil)
		if (errP == nil) != (errF == nil) {
			t.Fatalf("trial %d (%s): pruned err=%v full err=%v", trial, pred.String(), errP, errF)
		}
		if errP != nil {
			continue
		}
		if got, want := renderPages(pruned), renderPages(full); got != want {
			t.Fatalf("trial %d: predicate %s: pruned output differs from full scan\npruned:\n%s\nfull:\n%s",
				trial, pred.String(), got, want)
		}
	}
}

// TestPruneDifferentialWithProjection exercises the ordinal remap: the
// predicate refers to read-output ordinals of a reordered projection.
func TestPruneDifferentialWithProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	store := objstore.NewStore()
	store.Put("b", "o", pruneObject(t, rng))
	// Projection [1 0]: output ordinal 0 is column f, ordinal 1 is id.
	cond, err := expr.NewCompare(expr.Lt, expr.Col(1, "id", types.Int64), expr.Lit(types.IntValue(16)))
	if err != nil {
		t.Fatal(err)
	}
	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: pruneSchema(), Projection: []int{1, 0}}
	plan := substrait.NewPlan(&substrait.FilterRel{Input: read, Condition: cond})
	pruned, _, err := executeLocalPool(store, plan, 1, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := executeLocalPool(store, plan, 1, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderPages(pruned), renderPages(full); got != want {
		t.Fatalf("projected pruned output differs\npruned:\n%s\nfull:\n%s", got, want)
	}
	// id < 16 covers exactly the first of 12 row groups.
	if rows := countRows(pruned); rows != 16 {
		t.Fatalf("expected 16 rows, got %d", rows)
	}
}

func countRows(pages []*column.Page) int {
	n := 0
	for _, p := range pages {
		n += p.NumRows()
	}
	return n
}

// TestPruneCountersAndTrace checks the observability contract: pruning
// increments ocs_scan_rowgroups_pruned_total and
// ocs_scan_bytes_skipped_total on the ambient registry and leaves a
// scan.prune span with one event per skipped group.
func TestPruneCountersAndTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	store := objstore.NewStore()
	store.Put("b", "o", pruneObject(t, rng))
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(0)
	ctx := telemetry.WithRegistry(context.Background(), reg)
	ctx = telemetry.WithTracer(ctx, tracer)
	ctx, root := telemetry.StartSpan(ctx, "test.query")

	cond, err := expr.NewCompare(expr.Lt, expr.Col(0, "id", types.Int64), expr.Lit(types.IntValue(16)))
	if err != nil {
		t.Fatal(err)
	}
	read := &substrait.ReadRel{Bucket: "b", Object: "o", BaseSchema: pruneSchema()}
	plan := substrait.NewPlan(&substrait.FilterRel{Input: read, Condition: cond})
	if _, err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	env := newExecEnv(1)
	env.ctx = ctx
	op, err := compilePlan(store, plan, env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Drain(op); err != nil {
		t.Fatal(err)
	}
	env.close()
	root.End()

	if got := reg.CounterValue(telemetry.MetricScanRowGroupsPruned); got != 11 {
		t.Errorf("rowgroups_pruned = %d, want 11", got)
	}
	if got := reg.CounterValue(telemetry.MetricScanBytesSkipped); got <= 0 {
		t.Errorf("bytes_skipped = %d, want > 0", got)
	}
	if !strings.Contains(reg.Render(), telemetry.MetricScanRowGroupsPruned) {
		t.Errorf("metrics exposition does not contain %s", telemetry.MetricScanRowGroupsPruned)
	}
	spans := tracer.TraceSpans(root.Trace)
	var pruneSpan *telemetry.SpanView
	for i := range spans {
		if spans[i].Name == "scan.prune" {
			pruneSpan = &spans[i]
		}
	}
	if pruneSpan == nil {
		t.Fatalf("no scan.prune span in trace (spans: %v)", spanNames(spans))
	}
	if len(pruneSpan.Events) != 11 {
		t.Errorf("scan.prune has %d events, want 11 (one per pruned group)", len(pruneSpan.Events))
	}
	if pruneSpan.Attrs["bytes_skipped"] == "" || pruneSpan.Attrs["rowgroups_pruned"] != "11" {
		t.Errorf("scan.prune attrs incomplete: %v", pruneSpan.Attrs)
	}
}

func spanNames(spans []telemetry.SpanView) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	return names
}
