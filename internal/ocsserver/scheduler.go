package ocsserver

import (
	"errors"
	"sync"

	"prestocs/internal/telemetry"
)

// errSchedulerClosed fails scan tasks still pending when the node-wide
// scheduler shuts down, so an abandoned consumer is never left waiting on
// a slot no worker will fill.
var errSchedulerClosed = errors.New("ocsserver: scan scheduler closed")

// scanTask is one row-group scan. run performs the scan and delivers the
// outcome to the task's ordered slot; abort delivers err there instead
// (used when the scheduler shuts down with the task still queued). Each
// task owns exactly one slot, so delivery never blocks.
type scanTask struct {
	run   func()
	abort func(error)
}

// scanScheduler is the node-wide fair-share scan pool (DESIGN.md §7): one
// bounded set of workers round-robining row-group scan tasks across the
// per-query queues registered on it. A heavy scan with hundreds of queued
// row groups gets exactly one task slot per scheduling round, the same as
// a two-row-group selective query — which is what keeps small-query
// latency flat under mixed traffic. Replaces the per-query worker pools
// the scanner spawned before; the vet-concurrency gate keeps it that way.
type scanScheduler struct {
	startOnce sync.Once
	wg        sync.WaitGroup

	mu     sync.Mutex
	cond   *sync.Cond
	queues []*schedQueue // registration order; rr walks it circularly
	rr     int
	closed bool
}

// schedQueue holds one query's (strictly: one scan's) pending tasks in
// FIFO order plus its in-flight count, so close can drop what has not
// started and wait out what has.
type schedQueue struct {
	sched    *scanScheduler
	pending  []scanTask
	inflight int
	closed   bool
	queries  *telemetry.Gauge // active-queries gauge, held for release
}

// newScanScheduler returns a scheduler whose workers start lazily on the
// first register call. Per-query construction in the scan hot path is
// banned by `make vet-concurrency`; a node owns exactly one of these, and
// the in-process ExecuteLocal entry points own one per call (annotated).
func newScanScheduler() *scanScheduler {
	s := &scanScheduler{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// register adds a query's task queue. The first registration fixes the
// worker count (the node's resolved ScanPool); queries gauges the live
// queue count for /metrics.
func (s *scanScheduler) register(workers int, queries *telemetry.Gauge) *schedQueue {
	s.startOnce.Do(func() {
		if workers < 1 {
			workers = 1
		}
		s.wg.Add(workers)
		for i := 0; i < workers; i++ {
			go s.worker()
		}
	})
	q := &schedQueue{sched: s, queries: queries}
	s.mu.Lock()
	s.queues = append(s.queues, q)
	s.mu.Unlock()
	queries.Add(1)
	return q
}

// worker executes tasks picked fairly across queues until close.
func (s *scanScheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var q *schedQueue
		for !s.closed {
			if q = s.nextLocked(); q != nil {
				break
			}
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		task := q.pending[0]
		q.pending = q.pending[1:]
		q.inflight++
		s.mu.Unlock()
		task.run()
		s.mu.Lock()
		q.inflight--
		if q.inflight == 0 {
			// A closer may be waiting for the in-flight drain.
			s.cond.Broadcast()
		}
		s.mu.Unlock()
	}
}

// nextLocked picks the next queue with runnable work, round-robin from
// just past the last pick; nil when everything is idle. Caller holds mu.
func (s *scanScheduler) nextLocked() *schedQueue {
	n := len(s.queues)
	for i := 0; i < n; i++ {
		q := s.queues[(s.rr+i)%n]
		if len(q.pending) > 0 {
			s.rr = (s.rr + i + 1) % n
			return q
		}
	}
	return nil
}

// backlog reports the node-wide scan backlog: row-group tasks queued or
// in flight across every registered query, plus one unit per concurrent
// scan beyond the first. The queue-depth term captures bursts within a
// scan; the live-scan term captures multiprogramming pressure that the
// instantaneous queue misses (workers drain tiny row groups faster than
// handlers get rescheduled, so pending+inflight alone reads zero even on
// a contended node). The sum is the storage-load signal stamped onto
// outgoing stream frames (rpc.SetStreamLoad), which the connector's
// adaptive pushdown policy reads on the other side.
func (s *scanScheduler) backlog() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, q := range s.queues {
		total += len(q.pending) + q.inflight
	}
	if overlap := len(s.queues) - 1; overlap > 0 {
		total += overlap
	}
	return total
}

// close stops the workers and fails every still-pending task, so no
// consumer is left blocked on an unfilled slot. Idempotent.
func (s *scanScheduler) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var orphans []scanTask
	for _, q := range s.queues {
		orphans = append(orphans, q.pending...)
		q.pending = nil
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, t := range orphans {
		t.abort(errSchedulerClosed)
	}
	s.wg.Wait()
}

// submit enqueues one task. It reports false — without running or
// aborting the task — when the queue or scheduler is already closed.
func (q *schedQueue) submit(t scanTask) bool {
	s := q.sched
	s.mu.Lock()
	if q.closed || s.closed {
		s.mu.Unlock()
		return false
	}
	q.pending = append(q.pending, t)
	s.cond.Broadcast()
	s.mu.Unlock()
	return true
}

// stopped reports whether the queue has been closed; in-flight tasks
// check it to cut a killed query's wasted scan work short.
func (q *schedQueue) stopped() bool {
	q.sched.mu.Lock()
	defer q.sched.mu.Unlock()
	return q.closed
}

// close retires the queue: pending tasks are dropped (the consumer is
// gone; their count is returned so the caller can settle the queue-depth
// gauge), in-flight tasks are waited out so their stats merges land
// before the env finishes, and the queue leaves the round-robin ring.
func (q *schedQueue) close() int {
	s := q.sched
	s.mu.Lock()
	if q.closed {
		s.mu.Unlock()
		return 0
	}
	q.closed = true
	dropped := len(q.pending)
	q.pending = nil
	for q.inflight > 0 {
		s.cond.Wait()
	}
	for i, other := range s.queues {
		if other == q {
			s.queues = append(s.queues[:i], s.queues[i+1:]...)
			if s.rr > i {
				s.rr--
			}
			break
		}
	}
	if len(s.queues) > 0 {
		s.rr %= len(s.queues)
	} else {
		s.rr = 0
	}
	s.mu.Unlock()
	q.queries.Add(-1)
	return dropped
}
