package retry

import (
	"context"
	"errors"
	"io"
	"syscall"
	"testing"
	"time"

	"prestocs/internal/rpc"
)

func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	p := Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	attempts := 0
	err := p.Do(context.Background(), func() error {
		attempts++
		if attempts < 3 {
			return &rpc.TransportError{Op: "recv", Err: io.EOF}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d", attempts)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond}
	attempts := 0
	boom := &rpc.TransportError{Op: "dial", Err: syscall.ECONNREFUSED}
	err := p.Do(context.Background(), func() error {
		attempts++
		return boom
	})
	if !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("exhausted error = %v", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d", attempts)
	}
}

func TestDoStopsOnNonTransient(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	attempts := 0
	err := p.Do(context.Background(), func() error {
		attempts++
		return &rpc.RemoteError{Method: "Execute", Code: rpc.CodeInvalid, Message: "bad plan"}
	})
	if attempts != 1 {
		t.Errorf("non-transient error retried: attempts = %d", attempts)
	}
	if !errors.Is(err, rpc.ErrInvalid) {
		t.Errorf("error = %v", err)
	}
}

func TestDoPermanentUnwraps(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	inner := errors.New("short stream")
	attempts := 0
	err := p.Do(context.Background(), func() error {
		attempts++
		return Permanent(inner)
	})
	if attempts != 1 {
		t.Errorf("Permanent retried: attempts = %d", attempts)
	}
	if err != inner {
		t.Errorf("Permanent must return the inner error, got %v", err)
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) must be nil")
	}
}

func TestDoContextCancelDuringBackoff(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := p.Do(ctx, func() error {
		return &rpc.TransportError{Op: "recv", Err: io.ErrUnexpectedEOF}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("backoff sleep was not interrupted by cancel")
	}
}

func TestDoPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := Default().Do(ctx, func() error { called = true; return nil })
	if !errors.Is(err, context.Canceled) || called {
		t.Errorf("err = %v, called = %v", err, called)
	}
}

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestDelayJitterBounded(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5}
	for i := 0; i < 200; i++ {
		d := p.Delay(0)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms, 150ms]", d)
		}
	}
}

func TestNonePolicySingleAttempt(t *testing.T) {
	attempts := 0
	None().Do(context.Background(), func() error {
		attempts++
		return &rpc.TransportError{Op: "recv", Err: io.EOF}
	})
	if attempts != 1 {
		t.Errorf("None retried: attempts = %d", attempts)
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"shutdown", rpc.ErrShutdown, false},
		{"transport", &rpc.TransportError{Op: "recv", Err: io.EOF}, true},
		{"remote-unavailable", &rpc.RemoteError{Code: rpc.CodeUnavailable}, true},
		{"remote-invalid", &rpc.RemoteError{Code: rpc.CodeInvalid}, false},
		{"remote-notfound", &rpc.RemoteError{Code: rpc.CodeNotFound}, false},
		{"remote-unknown", &rpc.RemoteError{Code: rpc.CodeUnknown}, false},
		{"eof", io.EOF, true},
		{"unexpected-eof", io.ErrUnexpectedEOF, true},
		{"econnrefused", syscall.ECONNREFUSED, true},
		{"econnreset", syscall.ECONNRESET, true},
		{"plain", errors.New("whatever"), false},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("Transient(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
