// Package retry implements capped exponential backoff with jitter plus
// the transient/permanent error classification shared by the OCS client,
// the frontend fan-out and the connector fallback path. The model
// follows PushdownDB's degradation story: retry what may heal (peer
// unreachable, connection killed mid-call), give up immediately on what
// will not (invalid plans, missing objects, cancelled contexts) so the
// caller can fail fast or fall back to the no-pushdown path.
package retry

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"syscall"
	"time"

	"prestocs/internal/rpc"
	"prestocs/internal/telemetry"
)

// Policy describes a bounded retry loop.
type Policy struct {
	// MaxAttempts is the total number of tries, the first call
	// included. Values below 1 mean a single attempt (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff.
	MaxDelay time.Duration
	// Multiplier grows the delay each attempt; values below 1 mean 2.
	Multiplier float64
	// Jitter is the random fraction (0..1) by which each delay is
	// perturbed in both directions, de-synchronizing retry storms.
	Jitter float64
}

// Default is the policy used across the OCS path. The budget is kept
// small — three attempts, sub-second total — because a storage node that
// stays dead must surface quickly enough for the connector to fall back
// to the raw-scan path instead of wedging the query.
func Default() Policy {
	return Policy{
		MaxAttempts: 3,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

// None disables retries: one attempt, no backoff.
func None() Policy { return Policy{MaxAttempts: 1} }

// Delay returns the backoff before retry number attempt (0-based),
// capped and jittered.
func (p Policy) Delay(attempt int) time.Duration {
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	for i := 0; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d += d * p.Jitter * (2*rand.Float64() - 1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// permanentError marks an error as not retryable regardless of its
// underlying classification.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops immediately and returns the original
// error. Use it inside an op when a failure is detected that retrying
// cannot fix (e.g. a stream that ended cleanly but too early).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Do runs op until it succeeds, returns a non-transient or Permanent
// error, the attempt budget is exhausted, or ctx is done. Backoff sleeps
// are interruptible by ctx. Retries are observable through the context:
// each retried attempt bumps the retry_attempts counter in the ambient
// telemetry registry and lands as a "retry" event on the ambient span,
// and an exhausted budget bumps retry_giveups.
func (p Policy) Do(ctx context.Context, op func() error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	reg := telemetry.RegistryFrom(ctx)
	span := telemetry.SpanFrom(ctx)
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; ; attempt++ {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		err := op()
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		if err == nil || !Transient(err) {
			return err
		}
		if attempt+1 >= attempts {
			if attempts > 1 {
				reg.Counter(telemetry.MetricRetryGiveups).Inc()
				span.Event("retry-giveup", err.Error())
			}
			return err
		}
		reg.Counter(telemetry.MetricRetryAttempts).Inc()
		span.Event("retry", err.Error())
		t := time.NewTimer(p.Delay(attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Transient reports whether err looks like a failure that a retry (or a
// pushdown fallback) could heal: the peer is unreachable or died
// mid-call. Context errors, shutdown, and remote logic errors (invalid
// plan, missing object) are not transient.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, rpc.ErrShutdown) {
		return false
	}
	// Covers *rpc.TransportError (dial/send/recv failures) and remote
	// errors carrying CodeUnavailable, both of which Is-match the
	// sentinel.
	if errors.Is(err, rpc.ErrUnavailable) {
		return true
	}
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		return false // the server answered; its verdict will not change
	}
	// Raw network-level failures from callers outside the rpc client.
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	return false
}
