package telemetry

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the log-scale bucket layout: bucket
// i's inclusive upper bound is 2^i, bucket 0 absorbs everything <= 1, and
// the last bucket absorbs overflow.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1},
		{3, 2}, {4, 2},
		{5, 3}, {8, 3},
		{9, 4}, {1023, 10}, {1024, 10}, {1025, 11},
		{1 << 40, 40}, {1<<40 + 1, 41},
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.v)
		if got := h.BucketCount(tc.want); got != 1 {
			for i := 0; i < HistogramBuckets; i++ {
				if h.BucketCount(i) != 0 {
					t.Errorf("Observe(%d) landed in bucket %d, want %d", tc.v, i, tc.want)
				}
			}
		}
	}
	// The bound itself is inclusive; bound+1 spills to the next bucket.
	for _, i := range []int{1, 5, 20} {
		var h Histogram
		h.Observe(BucketBound(i))
		h.Observe(BucketBound(i) + 1)
		if h.BucketCount(i) != 1 || h.BucketCount(i+1) != 1 {
			t.Errorf("bound %d: bucket[%d]=%d bucket[%d]=%d, want 1 and 1",
				BucketBound(i), i, h.BucketCount(i), i+1, h.BucketCount(i+1))
		}
	}
	if BucketBound(0) != 1 || BucketBound(3) != 8 {
		t.Errorf("BucketBound = %d, %d; want 1, 8", BucketBound(0), BucketBound(3))
	}
	if BucketBound(HistogramBuckets-1) != 1<<63-1 {
		t.Errorf("overflow bound = %d, want MaxInt64", BucketBound(HistogramBuckets-1))
	}
	// An enormous value must land in the overflow bucket, not panic.
	var h Histogram
	h.Observe(1<<63 - 1)
	if h.BucketCount(HistogramBuckets-1) != 1 {
		t.Error("MaxInt64 observation missed the overflow bucket")
	}
}

func TestHistogramSumCount(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 10, 100} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 111 {
		t.Errorf("count=%d sum=%d, want 3, 111", h.Count(), h.Sum())
	}
	h.ObserveDuration(2 * time.Millisecond)
	if h.Sum() != 111+2000 {
		t.Errorf("sum after ObserveDuration = %d, want %d", h.Sum(), 111+2000)
	}
}

// TestNilSafety: every instrumentation entry point must be a no-op on nil
// receivers, so call sites never branch on "telemetry enabled".
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("x").Add(1)
	reg.Histogram("x").Observe(1)
	if reg.CounterValue("x") != 0 || reg.GaugeValue("x") != 0 || reg.HistogramCount("x") != 0 {
		t.Error("nil registry reported values")
	}
	if reg.Render() != "" {
		t.Error("nil registry rendered output")
	}
	var tr *Tracer
	if s := tr.StartRemote(1, 2, "x"); s != nil {
		t.Error("nil tracer started a span")
	}
	if tr.Spans() != nil || tr.Total() != 0 {
		t.Error("nil tracer reported spans")
	}
	var sp *Span
	sp.Event("e", "")
	sp.SetAttr("k", "v")
	sp.AddDuration("d", time.Second)
	sp.End()
	ctx, sp2 := StartSpan(context.Background(), "x")
	if sp2 != nil {
		t.Error("StartSpan without tracer returned a span")
	}
	if tid, pid := Inject(ctx); tid != 0 || pid != 0 {
		t.Error("Inject without span returned IDs")
	}
}

func TestRegistryLabels(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("calls", "method", "a").Add(2)
	reg.Counter("calls", "method", "b").Inc()
	if reg.CounterValue("calls", "method", "a") != 2 {
		t.Errorf("calls{a} = %d", reg.CounterValue("calls", "method", "a"))
	}
	if reg.CounterValue("calls", "method", "b") != 1 {
		t.Errorf("calls{b} = %d", reg.CounterValue("calls", "method", "b"))
	}
	if reg.CounterValue("calls") != 0 {
		t.Error("unlabeled counter leaked labeled values")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.start(TraceID(i+1), 0, "s").End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	if spans[0].Trace != 3 || spans[3].Trace != 6 {
		t.Errorf("retained traces %d..%d, want 3..6", spans[0].Trace, spans[3].Trace)
	}
	if tr.Total() != 6 {
		t.Errorf("total = %d, want 6", tr.Total())
	}
}

func TestSpanParentLinks(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	if root == nil || root.Trace == 0 {
		t.Fatal("root span missing trace ID")
	}
	cctx, child := StartSpan(ctx, "child")
	if child.Trace != root.Trace || child.Parent != root.ID {
		t.Errorf("child trace/parent = %d/%d, want %d/%d",
			child.Trace, child.Parent, root.Trace, root.ID)
	}
	if tid, pid := Inject(cctx); tid != child.Trace || pid != child.ID {
		t.Error("Inject did not return the current span's IDs")
	}
	// StartRemote continues the trace; zero trace means none.
	remote := tr.StartRemote(child.Trace, child.ID, "server")
	if remote.Trace != child.Trace || remote.Parent != child.ID {
		t.Error("StartRemote did not continue the trace")
	}
	if tr.StartRemote(0, 0, "server") != nil {
		t.Error("StartRemote with zero trace returned a span")
	}
	child.End()
	root.End()
	remote.End()
	if got := len(tr.TraceSpans(root.Trace)); got != 3 {
		t.Errorf("TraceSpans = %d spans, want 3", got)
	}
}

func TestRenderMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rpc_calls", "method", "echo").Add(3)
	reg.Gauge("pool_idle").Set(2)
	reg.Histogram("latency").Observe(5)
	out := reg.Render()
	for _, want := range []string{
		`rpc_calls{method="echo"} 3`,
		"pool_idle 2",
		`latency_bucket{le="8"} 1`,
		"latency_sum 5",
		"latency_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderTraceTree(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "query")
	_, child := StartSpan(ctx, "engine.execution")
	child.Event("retry", "conn reset")
	child.AddDuration("transfer_wait", 3*time.Millisecond)
	child.End()
	root.SetAttr("bytes_moved", "42")
	root.End()
	var b strings.Builder
	RenderTrace(&b, tr.TraceSpans(root.Trace))
	out := b.String()
	for _, want := range []string{"query", "  engine.execution", "! retry (conn reset)", "· bytes_moved=42", "· transfer_wait:"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderTrace missing %q in:\n%s", want, out)
		}
	}
	b.Reset()
	RenderTrace(&b, nil)
	if !strings.Contains(b.String(), "no spans") {
		t.Error("RenderTrace(nil) missing placeholder")
	}
}

func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Inc()
	tr := NewTracer(0)
	ctx := WithTracer(context.Background(), tr)
	_, root := StartSpan(ctx, "query")
	root.End()
	mux := NewMux(reg, map[string]*Tracer{"engine": tr})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}
	if out := get("/metrics"); !strings.Contains(out, "hits 1") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/traces"); !strings.Contains(out, "root=query") {
		t.Errorf("/debug/traces missing trace line:\n%s", out)
	}
	if out := get("/debug/traces?trace=" + traceHex(root.Trace)); !strings.Contains(out, "query") {
		t.Errorf("/debug/traces?trace= missing span tree:\n%s", out)
	}
}

func traceHex(id TraceID) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	v := uint64(id)
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}
