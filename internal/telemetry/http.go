package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"
)

// NewMux builds the debug HTTP handler served by cmd/ocsd and
// cmd/objstored on their -metrics-listen port:
//
//	/metrics       — the registry in Prometheus-style text exposition
//	/debug/traces  — recent traces, one line per trace with span count
//	                 and duration; /debug/traces?trace=<id> renders the
//	                 full span tree of one trace
//
// tracers maps a component label ("frontend", "node0") to its tracer;
// /debug/traces merges spans across all of them, so one query shows as
// one connected trace even though each component records its own spans.
//
// extras mount additional debug endpoints (e.g. the engine's
// /debug/queries process list) without telemetry importing their
// packages.
func NewMux(reg *Registry, tracers map[string]*Tracer, extras ...Endpoint) *http.ServeMux {
	mux := http.NewServeMux()
	for _, e := range extras {
		mux.Handle(e.Pattern, e.Handler)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, reg.Render())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var all []SpanView
		for _, t := range tracers {
			all = append(all, t.Spans()...)
		}
		if q := r.URL.Query().Get("trace"); q != "" {
			id, err := strconv.ParseUint(q, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			var spans []SpanView
			for _, v := range all {
				if v.Trace == TraceID(id) {
					spans = append(spans, v)
				}
			}
			RenderTrace(w, spans)
			return
		}
		byTrace := map[TraceID][]SpanView{}
		for _, v := range all {
			byTrace[v.Trace] = append(byTrace[v.Trace], v)
		}
		ids := make([]TraceID, 0, len(byTrace))
		for id := range byTrace {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			return earliest(byTrace[ids[i]]).Before(earliest(byTrace[ids[j]]))
		})
		for _, id := range ids {
			spans := byTrace[id]
			root := rootOf(spans)
			fmt.Fprintf(w, "trace %016x  spans=%d  root=%s  dur=%s\n",
				uint64(id), len(spans), root.Name, root.Duration())
		}
	})
	return mux
}

func earliest(spans []SpanView) time.Time {
	t0 := spans[0].Start
	for _, v := range spans[1:] {
		if v.Start.Before(t0) {
			t0 = v.Start
		}
	}
	return t0
}

func rootOf(spans []SpanView) SpanView {
	for _, v := range spans {
		if v.Parent == 0 {
			return v
		}
	}
	// No root retained (evicted): fall back to the earliest span.
	best := spans[0]
	for _, v := range spans[1:] {
		if v.Start.Before(best.Start) {
			best = v
		}
	}
	return best
}

// Endpoint is an extra debug handler mounted on the mux by pattern.
type Endpoint struct {
	Pattern string
	Handler http.Handler
}

// Serve binds addr and serves the debug mux in a background goroutine,
// returning the bound address and a shutdown func. Binaries pass
// -metrics-listen through here.
func Serve(addr string, reg *Registry, tracers map[string]*Tracer, extras ...Endpoint) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewMux(reg, tracers, extras...)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
