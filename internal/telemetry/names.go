package telemetry

// Canonical metric names. Every instrument the system registers is
// declared here, and `make vet-telemetry` fails the build when a name in
// this manifest has no registration site outside this package — so an
// rpc method, retry policy or fallback path cannot be added (or its
// instrumentation deleted) without the gate noticing.
//
// Naming convention: <component>_<what>_<unit-or-total>. Histograms are
// in microseconds unless the name says bytes.
const (
	// RPC client (per-method labels: method).
	MetricRPCClientLatency   = "rpc_client_latency_us"
	MetricRPCClientSentBytes = "rpc_client_sent_bytes_total"
	MetricRPCClientRecvBytes = "rpc_client_recv_bytes_total"
	MetricRPCClientErrors    = "rpc_client_errors_total"

	// RPC connection pool.
	MetricRPCPoolIdle     = "rpc_pool_idle_conns"
	MetricRPCPoolDials    = "rpc_pool_dials_total"
	MetricRPCPoolDiscards = "rpc_pool_discards_total"
	// MetricRPCPoolRedials counts transparent retries of a call whose
	// stale pooled connection failed before any response bytes arrived.
	MetricRPCPoolRedials = "rpc_pool_redials_total"

	// RPC frame layer.
	MetricRPCOversizeFrames = "rpc_oversize_frames_total"

	// RPC stream flow control (chunk-level backpressure). Stalls counts
	// the times a producer hit a full credit window and paused; inflight
	// gauges the chunks sent but not yet credited across live streams.
	MetricRPCStreamStalls   = "rpc_stream_window_stalls_total"
	MetricRPCStreamInflight = "rpc_stream_inflight_chunks"

	// RPC server (per-method labels: method).
	MetricRPCServerLatency   = "rpc_server_latency_us"
	MetricRPCServerSentBytes = "rpc_server_sent_bytes_total"
	MetricRPCServerRecvBytes = "rpc_server_recv_bytes_total"

	// Retry loop (labels: none; counts attempts beyond the first).
	MetricRetryAttempts = "retry_attempts_total"
	MetricRetryGiveups  = "retry_giveups_total"

	// Storage node (labels: node).
	MetricNodeChunksSent    = "ocs_node_chunks_sent_total"
	MetricNodeChunkBytes    = "ocs_node_chunk_bytes_total"
	MetricScanPoolActive    = "ocs_scan_pool_active_workers"
	MetricScanPoolQueued    = "ocs_scan_pool_queued_groups"
	MetricScanPoolRowGroups = "ocs_scan_rowgroups_total"
	// MetricScanSchedQueries gauges the queries with a registered queue
	// on the node-wide fair-share scan scheduler.
	MetricScanSchedQueries = "ocs_scan_sched_active_queries"
	// Zone-map pruning on the storage node: row groups skipped because
	// footer stats proved the filter false, and the compressed bytes
	// those groups would have read.
	MetricScanRowGroupsPruned = "ocs_scan_rowgroups_pruned_total"
	MetricScanBytesSkipped    = "ocs_scan_bytes_skipped_total"
	// MetricNodeSchedBacklog gauges the node-wide scan backlog (queued +
	// in-flight row-group tasks across all queries) sampled when stream
	// frames leave the node; the same value rides the frames as the
	// storage-load signal for adaptive pushdown.
	MetricNodeSchedBacklog = "ocs_node_sched_backlog"
	// Join bloom-filter evaluation on the storage node: probe rows hashed
	// against a pushed build-side filter, and the subset it proved absent
	// from the build (dropped before leaving the node).
	MetricStorageBloomRowsTested   = "ocs_bloom_rows_tested_total"
	MetricStorageBloomRowsFiltered = "ocs_bloom_rows_filtered_total"

	// Engine admission control and the live-query process list.
	// Queued gauges queries waiting for an admission slot; rejected
	// counts synchronous sheds (ErrOverloaded); wait is the queue time of
	// admitted queries; active gauges queries past admission and not yet
	// done; memory gauges the sum of admitted queries' reservations.
	MetricAdmissionQueued   = "engine_admission_queued_queries"
	MetricAdmissionRejected = "engine_admission_rejected_total"
	MetricAdmissionWait     = "engine_admission_wait_us"
	MetricQueriesActive     = "engine_queries_active"
	MetricQueryMemReserved  = "engine_query_memory_reserved_bytes"

	// Engine query stage metrics (one observation per query).
	MetricQueryTotal        = "engine_queries_total"
	MetricQueryErrors       = "engine_query_errors_total"
	MetricQueryLatency      = "engine_query_latency_us"
	MetricQueryBytesMoved   = "engine_query_bytes_moved_total"
	MetricQueryFallbacks    = "engine_query_fallback_splits_total"
	MetricQueryResultRows   = "engine_query_result_rows_total"
	MetricQueryPushdown     = "engine_query_pushdown_total"
	MetricQuerySubstraitGen = "engine_query_substrait_gen_us"
	MetricQueryTransfer     = "engine_query_transfer_us"
	// MetricQuerySplitsPruned counts splits dropped before scheduling by
	// per-object statistics (zone-map split pruning).
	MetricQuerySplitsPruned = "engine_query_splits_pruned_total"
	// Join execution: queries that ran a hash join, the build-side rows
	// indexed across them, and the per-query split of broadcast vs
	// partitioned probe strategies (labels: strategy).
	MetricQueryJoins         = "engine_join_queries_total"
	MetricJoinBuildRows      = "engine_join_build_rows_total"
	MetricJoinStrategyChosen = "engine_join_strategy_total"
	// Bloom pushdown accounting: probe splits that carried a build-side
	// bloom filter into storage, and splits where the node rejected the
	// filter (size cap) and the scan retried without it.
	MetricJoinBloomPushdown = "engine_join_bloom_splits_total"
	MetricJoinBloomRejected = "engine_join_bloom_rejected_total"

	// Connector pushdown monitor (window-independent lifetime totals).
	MetricMonitorQueries      = "ocs_monitor_queries_total"
	MetricMonitorSuccesses    = "ocs_monitor_successes_total"
	MetricMonitorFallbacks    = "ocs_monitor_fallback_splits_total"
	MetricMonitorSplitsPruned = "ocs_monitor_splits_pruned_total"

	// Adaptive pushdown policy (connector side). Decisions counts per-split
	// choices (labels: choice=pushdown|raw); flips counts mid-stream
	// switches from pushdown to the local resume path; the shape histogram
	// tracks observed per-(table, predicate-shape) selectivity in percent
	// (labels: shape); the load gauge mirrors the most recent storage
	// backlog word observed on stream frames.
	MetricPushdownDecisions        = "ocs_pushdown_decisions_total"
	MetricPushdownFlips            = "ocs_pushdown_flips_total"
	MetricPushdownShapeSelectivity = "ocs_pushdown_shape_selectivity_pct"
	MetricStorageLoad              = "ocs_storage_load_backlog"

	// Engine-side table-metadata cache (labels: catalog). Hit ratios are
	// lifetime percentages (0-100).
	MetricMetaCacheHits          = "cache_meta_hits_total"
	MetricMetaCacheMisses        = "cache_meta_misses_total"
	MetricMetaCacheInvalidations = "cache_meta_invalidations_total"
	MetricMetaCacheHitRatio      = "cache_meta_hit_ratio_pct"

	// Storage-node decoded-footer cache (labels: node).
	MetricFooterCacheHits      = "ocs_cache_footer_hits_total"
	MetricFooterCacheMisses    = "ocs_cache_footer_misses_total"
	MetricFooterCacheEvictions = "ocs_cache_footer_evictions_total"
	MetricFooterCacheBytes     = "ocs_cache_footer_bytes"
	MetricFooterCacheHitRatio  = "ocs_cache_footer_hit_ratio_pct"

	// Storage-node hot-page (decoded column chunk) cache (labels: node).
	// Rejected counts chunks the two-touch admission policy declined to
	// cache on their first sighting during pruning-heavy scans.
	MetricPageCacheHits      = "ocs_cache_page_hits_total"
	MetricPageCacheMisses    = "ocs_cache_page_misses_total"
	MetricPageCacheEvictions = "ocs_cache_page_evictions_total"
	MetricPageCacheBytes     = "ocs_cache_page_bytes"
	MetricPageCacheHitRatio  = "ocs_cache_page_hit_ratio_pct"
	MetricPageCacheRejected  = "ocs_cache_page_admission_rejected_total"

	// Write path: streaming ingestion (labels: table). Rows/objects/bytes
	// count committed data — a killed ingest that never reached its
	// metastore commit contributes nothing. Flush latency is the seal +
	// put + commit time per object, in microseconds.
	MetricIngestRows    = "ingest_rows_total"
	MetricIngestObjects = "ingest_objects_total"
	MetricIngestBytes   = "ingest_bytes_total"
	MetricIngestFlushUs = "ingest_flush_us"

	// Background compaction (labels: table). Merged counts source objects
	// folded into compacted outputs; reclaimed counts tombstoned objects
	// physically deleted after every pinned snapshot released them.
	MetricCompactRuns      = "compact_runs_total"
	MetricCompactMerged    = "compact_merged_objects_total"
	MetricCompactBytes     = "compact_bytes_written_total"
	MetricCompactReclaimed = "compact_reclaimed_objects_total"

	// Snapshot pins outstanding across all tables: queries pin the table
	// version they planned against; compaction defers physical deletes
	// past the oldest pin.
	MetricSnapshotPins = "metastore_snapshot_pins"
)
