// Package telemetry is the stdlib-only observability layer: distributed
// tracing (trace/span IDs with parent links, propagated across the RPC
// frame header) and a metrics registry (counters, gauges, log-scale
// histograms) shared by the engine, the connector, the RPC transport and
// the OCS servers. One query produces a single trace spanning
// connector → rpc client → frontend → storage-node scan pool →
// per-row-group scan; the same registry backs the harness's Table-3
// numbers and the live /metrics endpoint, so the two can never disagree
// (DESIGN.md §5c).
//
// Everything is nil-safe: a nil *Tracer, *Span or *Registry is a no-op,
// so instrumented code paths never branch on "is telemetry enabled" and
// the disabled-tracing overhead stays within the noise floor (see
// BenchmarkTracingOverhead).
package telemetry

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// TraceID identifies one end-to-end operation (one query). Zero means
// "no trace".
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no parent".
type SpanID uint64

// Event is a timestamped annotation on a span (a retry attempt, a
// pushdown fallback, a redial).
type Event struct {
	When time.Time
	Name string
	Attr string // optional free-form detail
}

// Span is one timed stage of a trace. Spans are created through a Tracer
// (or StartSpan) and delivered to the tracer's ring buffer on End.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Time

	tracer *Tracer

	mu     sync.Mutex
	end    time.Time
	events []Event
	attrs  map[string]string
	durs   map[string]time.Duration
	ended  bool
}

// Event records an annotation. Safe on a nil span.
func (s *Span) Event(name, attr string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, Event{When: time.Now(), Name: name, Attr: attr})
	s.mu.Unlock()
}

// SetAttr attaches a string attribute. Safe on a nil span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// AddDuration accumulates a named duration on the span. Stages that are
// interleaved with other work (per-chunk transfer waits, Arrow
// deserialize) are recorded this way instead of as thousands of
// sub-spans; the query profile reports them next to the span tree.
// Safe on a nil span.
func (s *Span) AddDuration(key string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.durs == nil {
		s.durs = make(map[string]time.Duration)
	}
	s.durs[key] += d
	s.mu.Unlock()
}

// End finishes the span and delivers it to its tracer. Idempotent and
// safe on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = time.Now()
	s.mu.Unlock()
	if s.tracer != nil {
		s.tracer.record(s.view())
	}
}

// view snapshots the span for the tracer's buffer.
func (s *Span) view() SpanView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := SpanView{
		Trace:  s.Trace,
		ID:     s.ID,
		Parent: s.Parent,
		Name:   s.Name,
		Start:  s.Start,
		End:    s.end,
		Events: append([]Event(nil), s.events...),
	}
	if len(s.attrs) > 0 {
		v.Attrs = make(map[string]string, len(s.attrs))
		for k, val := range s.attrs {
			v.Attrs[k] = val
		}
	}
	if len(s.durs) > 0 {
		v.Durations = make(map[string]time.Duration, len(s.durs))
		for k, val := range s.durs {
			v.Durations[k] = val
		}
	}
	return v
}

// SpanView is an immutable completed span.
type SpanView struct {
	Trace     TraceID
	ID        SpanID
	Parent    SpanID
	Name      string
	Start     time.Time
	End       time.Time
	Events    []Event
	Attrs     map[string]string
	Durations map[string]time.Duration
}

// Duration is the span's wall time.
func (v SpanView) Duration() time.Duration { return v.End.Sub(v.Start) }

// Tracer collects completed spans into a bounded ring buffer. Each
// process component (engine, frontend, each storage node) owns one; a
// query's trace is the union of the spans its trace ID collected across
// all of them, exactly as in a distributed deployment.
type Tracer struct {
	mu    sync.Mutex
	buf   []SpanView
	next  int
	full  bool
	seed  *rand.Rand
	total int64
}

// DefaultTraceCapacity bounds a tracer's span ring buffer.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer retaining the last capacity completed spans
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{
		buf:  make([]SpanView, capacity),
		seed: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

func (t *Tracer) id() uint64 {
	for {
		v := t.seed.Uint64()
		if v != 0 {
			return v
		}
	}
}

// start creates a live span. trace == 0 allocates a fresh trace ID
// (a root span).
func (t *Tracer) start(trace TraceID, parent SpanID, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if trace == 0 {
		trace = TraceID(t.id())
	}
	id := SpanID(t.id())
	t.mu.Unlock()
	return &Span{Trace: trace, ID: id, Parent: parent, Name: name, Start: time.Now(), tracer: t}
}

// StartRemote begins a span continuing a trace that arrived over the
// wire: the RPC server calls it with the trace and parent span IDs from
// the request frame header. Safe on a nil tracer.
func (t *Tracer) StartRemote(trace TraceID, parent SpanID, name string) *Span {
	if t == nil || trace == 0 {
		return nil
	}
	return t.start(trace, parent, name)
}

func (t *Tracer) record(v SpanView) {
	t.mu.Lock()
	t.buf[t.next] = v
	t.next = (t.next + 1) % len(t.buf)
	if t.next == 0 {
		t.full = true
	}
	t.total++
	t.mu.Unlock()
}

// Spans returns the retained completed spans, oldest first.
func (t *Tracer) Spans() []SpanView {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanView
	if t.full {
		out = append(out, t.buf[t.next:]...)
	}
	return append(out, t.buf[:t.next]...)
}

// TraceSpans returns the retained spans of one trace, in start order.
func (t *Tracer) TraceSpans(id TraceID) []SpanView {
	var out []SpanView
	for _, v := range t.Spans() {
		if v.Trace == id {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// TraceIDs returns the distinct trace IDs retained, most recent last.
func (t *Tracer) TraceIDs() []TraceID {
	seen := map[TraceID]bool{}
	var out []TraceID
	for _, v := range t.Spans() {
		if !seen[v.Trace] {
			seen[v.Trace] = true
			out = append(out, v.Trace)
		}
	}
	return out
}

// Total reports the lifetime completed-span count (spans may have been
// evicted from the ring).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Context plumbing. The tracer and the current span both travel in the
// context so deeply nested layers (retry loops, the rpc client) can
// create children without new parameters on every function.

type tracerKey struct{}
type spanKey struct{}
type registryKey struct{}

// WithTracer returns ctx carrying the tracer.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom extracts the context's tracer (nil when absent).
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// WithSpan returns ctx carrying span as the current span.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom extracts the context's current span (nil when absent).
func SpanFrom(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// WithRegistry returns ctx carrying the metrics registry, so layers
// without explicit wiring (the retry loop) can still emit.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey{}, r)
}

// RegistryFrom extracts the context's registry (nil when absent).
func RegistryFrom(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(registryKey{}).(*Registry)
	return r
}

// StartSpan begins a span under the context's tracer, as a child of the
// context's current span when one exists. With no tracer in ctx it
// returns (ctx, nil): every Span method is nil-safe, so callers never
// branch. The returned context carries the new span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	var trace TraceID
	var parent SpanID
	if p := SpanFrom(ctx); p != nil {
		trace, parent = p.Trace, p.ID
	}
	s := t.start(trace, parent, name)
	return WithSpan(ctx, s), s
}

// Inject reads the wire propagation IDs for the context's current span:
// the rpc client writes them into the request frame header. (0, 0) when
// no span is active.
func Inject(ctx context.Context) (TraceID, SpanID) {
	s := SpanFrom(ctx)
	if s == nil {
		return 0, 0
	}
	return s.Trace, s.ID
}
