package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// RenderTrace writes a human-readable span tree for one trace — the
// EXPLAIN ANALYZE-style profile prestolite prints with -profile, and the
// /debug/traces?trace=<id> view. Spans may come from several tracers
// (engine, frontend, storage nodes); parent links reassemble them into
// one tree. Orphan spans (parent evicted or remote) render at the root
// level, so a partially retained trace still prints.
func RenderTrace(w io.Writer, spans []SpanView) {
	if len(spans) == 0 {
		fmt.Fprintln(w, "(no spans)")
		return
	}
	byParent := map[SpanID][]SpanView{}
	have := map[SpanID]bool{}
	for _, v := range spans {
		have[v.ID] = true
	}
	var roots []SpanView
	for _, v := range spans {
		if v.Parent != 0 && have[v.Parent] {
			byParent[v.Parent] = append(byParent[v.Parent], v)
		} else {
			roots = append(roots, v)
		}
	}
	sortSpans(roots)
	for k := range byParent {
		sortSpans(byParent[k])
	}
	t0 := earliest(spans)
	fmt.Fprintf(w, "trace %016x\n", uint64(spans[0].Trace))
	var render func(v SpanView, depth int)
	render = func(v SpanView, depth int) {
		for i := 0; i < depth; i++ {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%-*s %10s  @+%s\n", 32-2*depth, v.Name,
			round(v.Duration()), round(v.Start.Sub(t0)))
		printDetail(w, v, depth)
		for _, c := range byParent[v.ID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
}

func printDetail(w io.Writer, v SpanView, depth int) {
	indent := func() {
		for i := 0; i < depth+1; i++ {
			fmt.Fprint(w, "  ")
		}
	}
	if len(v.Durations) > 0 {
		keys := make([]string, 0, len(v.Durations))
		for k := range v.Durations {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			indent()
			fmt.Fprintf(w, "· %s: %s\n", k, round(v.Durations[k]))
		}
	}
	if len(v.Attrs) > 0 {
		keys := make([]string, 0, len(v.Attrs))
		for k := range v.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			indent()
			fmt.Fprintf(w, "· %s=%s\n", k, v.Attrs[k])
		}
	}
	for _, e := range v.Events {
		indent()
		if e.Attr != "" {
			fmt.Fprintf(w, "! %s (%s) @+%s\n", e.Name, e.Attr, round(e.When.Sub(v.Start)))
		} else {
			fmt.Fprintf(w, "! %s @+%s\n", e.Name, round(e.When.Sub(v.Start)))
		}
	}
}

func sortSpans(s []SpanView) {
	sort.Slice(s, func(i, j int) bool { return s[i].Start.Before(s[j].Start) })
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
