package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a process-wide metric namespace: counters, gauges and
// histograms keyed by name plus label pairs. Get-or-create lookups are
// cheap (one RLock + map hit) and every method is safe on a nil
// receiver, so instrumentation sites never branch on "is metrics
// enabled".
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// metricKey renders name{k="v",...} with labels in the given order.
// Labels are alternating key, value pairs.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(labels[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Safe on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the counter (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value.
type Gauge struct{ v atomic.Int64 }

// Set stores n. Safe on nil.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (use negative n to decrement). Safe on nil.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistogramBuckets is the fixed bucket count: power-of-two upper bounds
// 1, 2, 4, ..., 2^62, plus an overflow bucket. Log-scale with no
// configuration keeps every histogram mergeable and allocation-free.
const HistogramBuckets = 64

// Histogram counts observations in fixed log-scale (power-of-two)
// buckets. Bucket i counts observations v with BucketBound(i-1) < v <=
// BucketBound(i); bucket 0 counts v <= 1 (including zero and negative).
type Histogram struct {
	counts [HistogramBuckets]atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// bucketIndex maps an observation to its bucket: ceil(log2(v)) for v>1.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	// bits.Len64(x-1) == ceil(log2(x)) for x >= 2.
	idx := bits.Len64(uint64(v - 1))
	if idx >= HistogramBuckets {
		return HistogramBuckets - 1
	}
	return idx
}

// BucketBound returns bucket i's inclusive upper bound (2^i); the last
// bucket is unbounded.
func BucketBound(i int) int64 {
	if i >= HistogramBuckets-1 {
		return 1<<62 - 1 + 1<<62 // MaxInt64: the overflow bucket
	}
	return 1 << uint(i)
}

// Observe records one value. Safe on nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// ObserveDuration records a duration in microseconds. Safe on nil.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Count reads the observation count (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum reads the accumulated total (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketCount reads bucket i's count (0 on nil or out of range).
func (h *Histogram) BucketCount(i int) int64 {
	if h == nil || i < 0 || i >= HistogramBuckets {
		return 0
	}
	return h.counts[i].Load()
}

// Counter returns the named counter, creating it on first use. Labels
// are alternating key, value pairs. Safe on a nil registry (returns a
// nil, no-op counter).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[key]; c == nil {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Safe on nil.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[key]; g == nil {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Safe
// on nil.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.RLock()
	h := r.histograms[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[key]; h == nil {
		h = &Histogram{}
		r.histograms[key] = h
	}
	return h
}

// CounterValue reads a counter without creating it (0 when absent);
// tests and the vet gate use it.
func (r *Registry) CounterValue(name string, labels ...string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.counters[metricKey(name, labels)].Value()
}

// GaugeValue reads a gauge without creating it (0 when absent).
func (r *Registry) GaugeValue(name string, labels ...string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gauges[metricKey(name, labels)].Value()
}

// HistogramCount reads a histogram's observation count without creating
// it (0 when absent).
func (r *Registry) HistogramCount(name string, labels ...string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.histograms[metricKey(name, labels)].Count()
}

// Render writes the registry in Prometheus-style text exposition:
// counters and gauges one line each, histograms as cumulative
// name_bucket{le="..."} lines plus name_sum and name_count. Only
// non-empty buckets render, keeping 64-bucket histograms readable.
func (r *Registry) Render() string {
	if r == nil {
		return ""
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var b strings.Builder
	keys := make([]string, 0, len(r.counters))
	for k := range r.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, r.counters[k].Value())
	}
	keys = keys[:0]
	for k := range r.gauges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, r.gauges[k].Value())
	}
	keys = keys[:0]
	for k := range r.histograms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := r.histograms[k]
		name, labels := splitKey(k)
		var cum int64
		for i := 0; i < HistogramBuckets; i++ {
			c := h.counts[i].Load()
			if c == 0 {
				continue
			}
			cum += c
			le := fmt.Sprintf("%d", BucketBound(i))
			if i == HistogramBuckets-1 {
				le = "+Inf"
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", name, mergeLabels(labels, `le="`+le+`"`), cum)
		}
		fmt.Fprintf(&b, "%s_sum%s %d\n", name, labels, h.Sum())
		fmt.Fprintf(&b, "%s_count%s %d\n", name, labels, h.Count())
	}
	return b.String()
}

// splitKey separates "name{labels}" into name and "{labels}" ("" when
// unlabeled).
func splitKey(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}

// mergeLabels appends extra to a "{...}" label block (or starts one).
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}
