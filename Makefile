GO ?= go
BENCH_OUT ?= BENCH_PR10.json
# COVER_MIN is the floor for `make cover` over the pruning-critical and
# write-path packages (expr, parquetlite, ocsserver, ingest, metastore).
# Measured combined coverage is ~81%; the floor leaves headroom for small
# refactors but fails the gate if tests are deleted wholesale.
COVER_MIN ?= 80.0

.PHONY: build test bench bench-compare bench-gate bench-paper faults faults-ingest check vet-vectorized \
	vet-telemetry vet-pruning vet-cache vet-concurrency vet-adaptive vet-join vet-ingest ci-fast ci-race ci cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the kernel/operator microbenchmarks (vectorized expression
# kernels, filter selectivity sweep, hash aggregation, sort/top-N), the
# zone-map pruning selectivity sweep (pruned vs unpruned storage scans),
# the hot-page cache comparison (cold per-iteration decode vs a warmed
# footer+page cache), the tracing-overhead comparison (telemetry disabled
# vs enabled must stay within 3%) and the mixed-traffic latency profile
# (small-query p50/p99 while heavy scans run), plus the adaptive-pushdown
# selectivity × storage-load sweep (static always/never vs the adaptive
# policy at both extremes) and the join bloom-pushdown sweep (Q3-shaped
# lineitem ⋈ orders with the probe-side bloom on vs off; the on arm must
# move fewer storage rows), and the ingest-throughput sweep (rows/s and
# time-to-queryable through Append+Flush, compaction off vs on), and
# archives the numbers as $(BENCH_OUT); the human-readable table still
# prints on stderr. The end-to-end paper sweeps live under bench-paper.
bench:
	{ $(GO) test -bench=. -benchmem -run '^$$' ./internal/exec/ ; \
	  $(GO) test -bench='PruneSweep|HotCache' -benchmem -run '^$$' ./internal/ocsserver/ ; \
	  $(GO) test -bench='TracingOverhead|MixedTraffic|AdaptiveSweep|JoinBloomSweep|IngestThroughput' -benchmem -run '^$$' ./internal/harness/ ; } \
		| $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# bench-compare diffs two benchjson archives and fails on >20% ns/op
# regressions: make bench-compare OLD=BENCH_PR5.json NEW=BENCH_PR6.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)

# bench-gate reruns the mixed-traffic latency benchmark and diffs its
# small-query p50/p99 against the archived PR9 numbers: the snapshot
# pinning now sits on the per-query table-resolution hot path (after the
# adaptive machinery landed on the per-split one), so this is the guard
# that it did not tax interactive latency under load. The threshold is
# generous (shared CI runners are noisy); the trend, not the percent, is
# the signal.
bench-gate:
	$(GO) test -bench='MixedTraffic' -benchmem -run '^$$' ./internal/harness/ \
		| $(GO) run ./cmd/benchjson > /tmp/bench-gate.json
	$(GO) run ./cmd/benchjson -compare -metrics 'small-p50-ms,small-p99-ms' -threshold 60 \
		BENCH_PR9.json /tmp/bench-gate.json

# bench-paper regenerates the paper-evaluation benchmarks (full in-process
# topology per iteration; slow).
bench-paper:
	$(GO) test -bench=. -benchmem ./...

# faults runs the failure-injection matrix twice under the race detector:
# killed connections, black-holed links, dead compute units, cancelled
# and deadline-bounded queries, cache-invalidation races, the
# mixed-traffic load scenarios (starvation, slow readers, killed clients
# mid-stream), and the write-path scenarios (killed ingest, compaction
# racing queries, snapshot-pinned scans) (DESIGN.md §5b, §7, §10).
faults:
	$(GO) test -race -count=2 -run 'Fault|Kill|Cancel|Retry|Fallback|Deadline|Blackhole|ComputeUnit|CacheInvalidation|Starvation|SlowClient|Backpressure|Overloaded|Flip|Ingest|Compact|Snapshot' \
		./internal/rpc/... ./internal/retry/... ./internal/faultnet/... \
		./internal/ocsserver/... ./internal/harness/... ./internal/engine/... \
		./internal/ingest/... ./internal/metastore/...

# faults-ingest is the CI ingest lane: only the write-path scenarios —
# streaming ingestion (killed connections, dropped batches), background
# compaction (mid-run kills, GC-vs-pin races) and snapshot consistency —
# twice under the race detector.
faults-ingest:
	$(GO) test -race -count=2 -run 'Ingest|Compact|Snapshot' \
		./internal/ingest/... ./internal/metastore/... ./internal/harness/...

# vet-vectorized guards the vectorized hot path: per-row expression
# evaluation (expr.EvalRow) must not reappear in the operator library or
# the storage executor — the only legitimate per-row evaluation is the
# fallback inside internal/expr itself.
vet-vectorized:
	@bad=$$(grep -n 'EvalRow' internal/exec/*.go internal/ocsserver/*.go internal/objstore/*.go 2>/dev/null | grep -v '_test.go'); \
	if [ -n "$$bad" ]; then \
		echo "per-row expr.EvalRow crept back into the exec hot path:"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "vet-vectorized: exec hot path is EvalRow-free"

# vet-telemetry keeps the metric-name manifest honest: every Metric* const
# declared in internal/telemetry/names.go must have a registration site in
# non-test code outside that package. Instrumentation cannot be deleted —
# and dead names cannot accumulate — without this gate noticing.
vet-telemetry:
	@missing=""; \
	for name in $$(grep -oE 'Metric[A-Za-z0-9]+' internal/telemetry/names.go | sort -u); do \
		if ! grep -rqE "telemetry\.$$name\b" --include='*.go' --exclude='*_test.go' --exclude-dir=telemetry internal cmd; then \
			missing="$$missing $$name"; \
		fi; \
	done; \
	if [ -n "$$missing" ]; then \
		echo "vet-telemetry: metric names with no registration site outside internal/telemetry:$$missing"; \
		exit 1; \
	fi
	@echo "vet-telemetry: every manifest metric has a registration site"

# vet-pruning guards the zone-map invariant: scan paths in the storage
# executor and the OCS connector must decode only row groups that
# survived statistics pruning. Any ReadAll/ReadRowGroup call site in
# those packages needs an explicit `// vet-pruning:allow <reason>`
# annotation, reserved for paths that genuinely cannot prune (the raw
# no-pushdown scan and the post-prune keep-list iterations).
vet-pruning:
	@bad=$$(grep -n 'ReadAll(\|ReadRowGroup(' internal/ocsserver/*.go internal/connector/ocs/*.go 2>/dev/null \
		| grep -v '_test.go' | grep -v 'vet-pruning:allow'); \
	if [ -n "$$bad" ]; then \
		echo "vet-pruning: full row-group decode without a prune justification"; \
		echo "(annotate // vet-pruning:allow <reason> only for paths that cannot prune):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "vet-pruning: storage scan paths decode only post-prune row groups"

# vet-cache guards the caching tier: per-query hot paths must go through
# the cache package, not straight to the metastore or the footer decoder.
# Direct metastore Get calls in the connectors/engine and direct
# parquetlite.NewReader footer decodes in the storage executor or the OCS
# connector need an explicit `// vet-cache:allow <reason>` annotation,
# reserved for paths that genuinely must bypass the caches (the
# engine-side raw fallback scan, cold utility paths).
vet-cache:
	@bad=$$(grep -n 'meta\.Get(\|metastore\.Get(' internal/connector/ocs/*.go internal/connector/hive/*.go internal/engine/*.go 2>/dev/null \
		| grep -v '_test.go' | grep -v 'vet-cache:allow'); \
	if [ -n "$$bad" ]; then \
		echo "vet-cache: direct metastore lookup on a per-query path (route through cache.TableCache"; \
		echo "or annotate // vet-cache:allow <reason>):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@bad=$$(grep -n 'parquetlite\.NewReader(' internal/ocsserver/*.go internal/connector/ocs/*.go 2>/dev/null \
		| grep -v '_test.go' | grep -v 'vet-cache:allow'); \
	if [ -n "$$bad" ]; then \
		echo "vet-cache: direct footer decode on a per-query path (route through cache.FooterCache.Open"; \
		echo "or annotate // vet-cache:allow <reason>):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "vet-cache: per-query metadata and footer lookups go through the cache tier"

# vet-concurrency guards the shared-scheduler invariant (DESIGN.md §7):
# storage-node scan work must flow through the node-wide fair scheduler.
# Constructing a scheduler (the old per-query worker-pool shape) anywhere
# in internal/ocsserver needs an explicit `// vet-concurrency:allow
# <reason>` annotation, reserved for the node-wide instance and the
# in-process entry point; and the scanner itself must stay free of ad-hoc
# goroutines — its parallelism budget belongs to the scheduler.
vet-concurrency:
	@bad=$$(grep -n 'newScanScheduler(' internal/ocsserver/*.go 2>/dev/null \
		| grep -v '_test.go' | grep -v 'scheduler.go' | grep -v 'vet-concurrency:allow'); \
	if [ -n "$$bad" ]; then \
		echo "vet-concurrency: per-query scheduler construction in ocsserver (share the"; \
		echo "node-wide scheduler or annotate // vet-concurrency:allow <reason>):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@bad=$$(grep -n 'go func' internal/ocsserver/scanner.go 2>/dev/null); \
	if [ -n "$$bad" ]; then \
		echo "vet-concurrency: ad-hoc goroutine in the scanner; submit scanTasks to the"; \
		echo "shared scheduler instead:"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "vet-concurrency: scan work flows through the shared node-wide scheduler"

# vet-adaptive guards the single-decision-point invariant (DESIGN.md §8):
# every pushdown-vs-raw choice — static mode, plan-time advice, per-split
# adaptive pricing, mid-stream flips — is made by the policy module. A
# SplitDecision constructed anywhere else in the OCS connector, or a
# revival of the old Monitor.AdvisePushdown entry point, is a second
# decision path and fails the gate. `// vet-adaptive:allow <reason>`
# annotates the rare legitimate exception.
vet-adaptive:
	@bad=$$(grep -n 'SplitDecision{' internal/connector/ocs/*.go 2>/dev/null \
		| grep -v '_test.go' | grep -v 'policy.go' | grep -v 'vet-adaptive:allow'); \
	if [ -n "$$bad" ]; then \
		echo "vet-adaptive: pushdown decision constructed outside the policy module"; \
		echo "(route through ocs.Policy or annotate // vet-adaptive:allow <reason>):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@bad=$$(grep -rn '\.AdvisePushdown(' --include='*.go' --exclude='*_test.go' internal cmd 2>/dev/null \
		| grep -v 'vet-adaptive:allow'); \
	if [ -n "$$bad" ]; then \
		echo "vet-adaptive: Monitor.AdvisePushdown is retired; plan-time advice comes from"; \
		echo "Policy.AdvisePlanPushdown (or annotate // vet-adaptive:allow <reason>):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "vet-adaptive: all pushdown decisions flow through the policy module"

# vet-join guards the vectorized join hot path: the hash-join probe, the
# engine-side bloom probe and the bloom membership kernels must stay
# columnar — gather-list construction and vector batch tests, never a
# per-row Value/Row accessor loop. A call site that genuinely needs a
# scalar accessor takes an explicit `// vet-join:allow <reason>`.
vet-join:
	@bad=$$(grep -n '\.Row(\|\.Value(' internal/exec/join.go internal/exec/bloomprobe.go internal/bloom/*.go 2>/dev/null \
		| grep -v '_test.go' | grep -v 'vet-join:allow'); \
	if [ -n "$$bad" ]; then \
		echo "vet-join: per-row accessor loop in the join/bloom hot path"; \
		echo "(build gather lists over vectors or annotate // vet-join:allow <reason>):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "vet-join: join probe and bloom kernels are columnar"

# vet-ingest guards the single-writer invariant (DESIGN.md §10): catalog
# entries are assembled only by the ingest package, so every registered
# table carries fresh per-object zone maps and per-object sizes. A
# metastore.Table literal anywhere else in non-test code is an unversioned
# registration path and fails the gate. `// vet-ingest:allow <reason>`
# annotates the rare legitimate exception.
vet-ingest:
	@bad=$$(grep -rn 'metastore\.Table{' --include='*.go' --exclude='*_test.go' \
		internal cmd 2>/dev/null \
		| grep -v '^internal/ingest/' | grep -v '^internal/metastore/' | grep -v 'vet-ingest:allow'); \
	if [ -n "$$bad" ]; then \
		echo "vet-ingest: metastore.Table assembled outside the ingest package (route through"; \
		echo "ingest.AssembleTable/RegisterTable or annotate // vet-ingest:allow <reason>):"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "vet-ingest: all catalog registrations flow through the ingest package"

# check is the verification gate: vet (plus the vectorized hot-path,
# telemetry-manifest, pruning, caching, shared-scheduler,
# adaptive-decision, join hot-path and ingest single-writer guards) and the full suite under
# the race detector (the streaming RPC and parallel scanner are
# concurrency-heavy), then the fault-injection matrix.
check:
	$(GO) vet ./...
	$(MAKE) vet-vectorized
	$(MAKE) vet-telemetry
	$(MAKE) vet-pruning
	$(MAKE) vet-cache
	$(MAKE) vet-concurrency
	$(MAKE) vet-adaptive
	$(MAKE) vet-join
	$(MAKE) vet-ingest
	$(GO) test -race ./...
	$(MAKE) faults

# ci-fast is the quick CI lane: formatting, compilation and every static
# gate — everything that fails in seconds. The GitHub workflow calls this
# exact target so CI and local runs cannot drift.
ci-fast:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: these files need formatting:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi
	@echo "gofmt: clean"
	$(GO) build ./...
	$(GO) vet ./...
	$(MAKE) vet-vectorized
	$(MAKE) vet-telemetry
	$(MAKE) vet-pruning
	$(MAKE) vet-cache
	$(MAKE) vet-concurrency
	$(MAKE) vet-adaptive
	$(MAKE) vet-join
	$(MAKE) vet-ingest

# ci-race is the CI race lane: the full suite under the race detector.
ci-race:
	$(GO) test -race ./...

# ci mirrors the GitHub workflow end to end: fast gates, race suite,
# fault-injection matrix.
ci: ci-fast ci-race faults

# cover enforces a combined statement-coverage floor over the packages
# that implement statistics pruning and the write path; see COVER_MIN
# above.
cover:
	$(GO) test -coverprofile=cover.out ./internal/expr/ ./internal/parquetlite/ ./internal/ocsserver/ ./internal/ingest/ ./internal/metastore/
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { gsub("%","",$$3); print $$3 }'); \
	echo "combined coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { exit (t+0 < min+0) }' || { \
		echo "cover: $$total% is below the $(COVER_MIN)% floor"; exit 1; }
