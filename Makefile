GO ?= go

.PHONY: build test bench bench-paper faults check vet-vectorized vet-telemetry

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# bench runs the kernel/operator microbenchmarks (vectorized expression
# kernels, filter selectivity sweep, hash aggregation, sort/top-N) plus the
# tracing-overhead comparison (telemetry disabled vs enabled must stay
# within 3%) and archives the numbers as BENCH_PR4.json; the
# human-readable table still prints on stderr. The end-to-end paper sweeps
# live under bench-paper.
bench:
	{ $(GO) test -bench=. -benchmem -run '^$$' ./internal/exec/ ; \
	  $(GO) test -bench=TracingOverhead -benchmem -run '^$$' ./internal/harness/ ; } \
		| $(GO) run ./cmd/benchjson > BENCH_PR4.json

# bench-paper regenerates the paper-evaluation benchmarks (full in-process
# topology per iteration; slow).
bench-paper:
	$(GO) test -bench=. -benchmem ./...

# faults runs the failure-injection matrix twice under the race detector:
# killed connections, black-holed links, dead compute units, cancelled
# and deadline-bounded queries (DESIGN.md §5b).
faults:
	$(GO) test -race -count=2 -run 'Fault|Kill|Cancel|Retry|Fallback|Deadline|Blackhole|ComputeUnit' \
		./internal/rpc/... ./internal/retry/... ./internal/faultnet/... \
		./internal/ocsserver/... ./internal/harness/...

# vet-vectorized guards the vectorized hot path: per-row expression
# evaluation (expr.EvalRow) must not reappear in the operator library or
# the storage executor — the only legitimate per-row evaluation is the
# fallback inside internal/expr itself.
vet-vectorized:
	@bad=$$(grep -n 'EvalRow' internal/exec/*.go internal/ocsserver/*.go internal/objstore/*.go 2>/dev/null | grep -v '_test.go'); \
	if [ -n "$$bad" ]; then \
		echo "per-row expr.EvalRow crept back into the exec hot path:"; \
		echo "$$bad"; \
		exit 1; \
	fi
	@echo "vet-vectorized: exec hot path is EvalRow-free"

# vet-telemetry keeps the metric-name manifest honest: every Metric* const
# declared in internal/telemetry/names.go must have a registration site in
# non-test code outside that package. Instrumentation cannot be deleted —
# and dead names cannot accumulate — without this gate noticing.
vet-telemetry:
	@missing=""; \
	for name in $$(grep -oE 'Metric[A-Za-z0-9]+' internal/telemetry/names.go | sort -u); do \
		if ! grep -rqE "telemetry\.$$name\b" --include='*.go' --exclude='*_test.go' --exclude-dir=telemetry internal cmd; then \
			missing="$$missing $$name"; \
		fi; \
	done; \
	if [ -n "$$missing" ]; then \
		echo "vet-telemetry: metric names with no registration site outside internal/telemetry:$$missing"; \
		exit 1; \
	fi
	@echo "vet-telemetry: every manifest metric has a registration site"

# check is the verification gate: vet (plus the vectorized hot-path and
# telemetry-manifest guards) and the full suite under the race detector
# (the streaming RPC and parallel scanner are concurrency-heavy), then the
# fault-injection matrix.
check:
	$(GO) vet ./...
	$(MAKE) vet-vectorized
	$(MAKE) vet-telemetry
	$(GO) test -race ./...
	$(MAKE) faults
