GO ?= go

.PHONY: build test bench faults check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# faults runs the failure-injection matrix twice under the race detector:
# killed connections, black-holed links, dead compute units, cancelled
# and deadline-bounded queries (DESIGN.md §5b).
faults:
	$(GO) test -race -count=2 -run 'Fault|Kill|Cancel|Retry|Fallback|Deadline|Blackhole|ComputeUnit' \
		./internal/rpc/... ./internal/retry/... ./internal/faultnet/... \
		./internal/ocsserver/... ./internal/harness/...

# check is the verification gate: vet plus the full suite under the race
# detector (the streaming RPC and parallel scanner are concurrency-heavy),
# then the fault-injection matrix.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) faults
