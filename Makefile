GO ?= go

.PHONY: build test bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# check is the verification gate: vet plus the full suite under the race
# detector (the streaming RPC and parallel scanner are concurrency-heavy).
check:
	$(GO) vet ./...
	$(GO) test -race ./...
