module prestocs

go 1.22
