// Command experiments regenerates every table and figure in the paper's
// evaluation section (DESIGN.md §5): Table 1 (hardware profiles), Table 2
// (queries and selectivity), Figure 5 a/b/c (progressive pushdown over
// Laghos, Deep Water and TPC-H Q1), Figure 6 (compression × pushdown) and
// Table 3 (single-query overhead breakdown).
//
// Usage:
//
//	experiments [-exp all|table1|table2|fig5a|fig5b|fig5c|fig6|table3]
//	            [-files N] [-rows N] [-nodes N] [-v]
//
// Each experiment stands up the full topology in-process (engine, OCS
// frontend + storage nodes, object store over loopback TCP), generates
// the dataset, runs the sweep and prints paper-style rows with both
// modeled time (Table 1 hardware, see internal/costmodel) and measured
// data movement.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prestocs/internal/compress"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/costmodel"
	"prestocs/internal/engine"
	"prestocs/internal/harness"
	"prestocs/internal/workload"
)

var (
	expFlag   = flag.String("exp", "all", "experiment: all, table1, table2, fig5a, fig5b, fig5c, fig6, table3")
	filesFlag = flag.Int("files", 0, "override object count per dataset (0 = experiment default)")
	rowsFlag  = flag.Int("rows", 0, "override rows per object (0 = experiment default)")
	nodesFlag = flag.Int("nodes", 1, "OCS storage nodes")
	verbose   = flag.Bool("v", false, "print per-cell stage breakdowns")
)

func main() {
	flag.Parse()
	runners := map[string]func() error{
		"table1": table1,
		"table2": table2,
		"fig5a":  fig5a,
		"fig5b":  fig5b,
		"fig5c":  fig5c,
		"fig6":   fig6,
		"table3": table3,
	}
	order := []string{"table1", "table2", "fig5a", "fig5b", "fig5c", "fig6", "table3"}
	if *expFlag != "all" {
		if _, ok := runners[*expFlag]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expFlag)
			os.Exit(2)
		}
		order = []string{*expFlag}
	}
	for _, name := range order {
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func cfg(defFiles, defRows int, codec compress.Codec) workload.Config {
	c := workload.Config{Files: defFiles, RowsPerFile: defRows, Codec: codec, Seed: 42}
	if *filesFlag > 0 {
		c.Files = *filesFlag
	}
	if *rowsFlag > 0 {
		c.RowsPerFile = *rowsFlag
	}
	return c
}

func header(title string) {
	fmt.Println("======================================================================")
	fmt.Println(title)
	fmt.Println("======================================================================")
}

// table1 prints the hardware profiles the cost model uses.
func table1() error {
	header("Table 1: Hardware specifications (cost-model profiles)")
	p := costmodel.Default()
	row := func(n costmodel.NodeProfile) {
		fmt.Printf("  %-10s %3d cores @ %.1f GHz, %4d GB RAM  (capacity %.1f core-GHz)\n",
			n.Name, n.Cores, n.GHz, n.MemGB, n.Capacity())
	}
	row(p.Compute)
	row(p.Frontend)
	row(p.Storage)
	fmt.Printf("  network    10 GbE (%.2f GB/s)\n", p.NetworkBytesPerSec/1e9)
	fmt.Printf("  media      NVMe (%.1f GB/s read)\n", p.MediaBytesPerSec/1e9)
	return nil
}

func loadDataset(c *harness.Cluster, kind string, codec compress.Codec) (*workload.Dataset, error) {
	var d *workload.Dataset
	var err error
	switch kind {
	case "laghos":
		d, err = workload.Laghos(cfg(16, 16384, codec))
	case "deepwater":
		d, err = workload.DeepWater(cfg(16, 32768, codec))
	case "tpch":
		d, err = workload.TPCH(cfg(8, 32768, codec))
	default:
		return nil, fmt.Errorf("unknown dataset %q", kind)
	}
	if err != nil {
		return nil, err
	}
	return d, c.Load(d)
}

// table2 prints each query, its execution plan shape and measured
// selectivity.
func table2() error {
	header("Table 2: Queries, plans and measured selectivity")
	c, err := harness.StartCluster(*nodesFlag)
	if err != nil {
		return err
	}
	defer c.Close()
	for _, kind := range []string{"laghos", "deepwater", "tpch"} {
		d, err := loadDataset(c, kind, compress.None)
		if err != nil {
			return err
		}
		cell, err := c.Run(kind, d.Query, engine.NewSession().Set(ocsconn.SessionPushdown, "none"))
		if err != nil {
			return err
		}
		sel := harness.Selectivity(cell, d)
		fmt.Printf("Dataset: %s (%d objects, %d rows, %.1f MB stored)\n",
			d.Name, len(d.Table.Objects), d.Table.RowCount, float64(d.Table.TotalBytes)/1e6)
		fmt.Printf("  Query: %s\n", d.Query)
		fmt.Printf("  Selectivity: %.7f%%  (result %d rows)\n", sel*100, cell.Rows)
		if *verbose {
			fmt.Printf("  Plan:\n%s", indent(cell.Stats.PlanText))
		}
	}
	return nil
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "    " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}

func runFig5(name, kind string, paperNote string) error {
	header(fmt.Sprintf("Figure 5(%s): progressive pushdown — %s", name, kind))
	fmt.Println(paperNote)
	c, err := harness.StartCluster(*nodesFlag)
	if err != nil {
		return err
	}
	defer c.Close()
	d, err := loadDataset(c, kind, compress.None)
	if err != nil {
		return err
	}
	cells, err := c.RunFig5(d)
	if err != nil {
		return err
	}
	printCells(cells)
	base := cells[1] // filter-only baseline, as in the paper's speedup claims
	last := cells[len(cells)-1]
	fmt.Printf("  => full pushdown vs filter-only: %.2fx modeled speedup, %.2f%% movement reduction\n",
		ratio(base.Modeled.Total, last.Modeled.Total),
		100*(1-float64(last.BytesMoved)/float64(base.BytesMoved)))
	return nil
}

func printCells(cells []*harness.Cell) {
	fmt.Printf("  %-20s %14s %14s %12s %8s %s\n",
		"pushdown", "modeled time", "wall time", "moved", "rows", "pushed-ops")
	for _, cell := range cells {
		fmt.Printf("  %-20s %14v %14v %12s %8d %v\n",
			cell.Label, cell.Modeled.Total.Round(time.Microsecond),
			cell.Wall.Round(time.Microsecond), byteCount(cell.BytesMoved), cell.Rows, cell.Pushed)
		if *verbose {
			fmt.Printf("      %s\n", cell.Modeled)
		}
	}
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func byteCount(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func fig5a() error {
	return runFig5("a", "laghos",
		"Paper: 2710s none / 1015s filter / 828s +agg / 450s full; movement 24GB -> 0.5MB.")
}

func fig5b() error {
	return runFig5("b", "deepwater",
		"Paper: 1033s none / 441s filter / 473s +project (slowdown) / 335s +agg; movement 30GB -> 1MB.")
}

func fig5c() error {
	return runFig5("c", "tpch",
		"Paper: 11s none / 9s filter / 14s +project (slowdown) / 2.21s +agg; movement 194MB -> 0.5MB.")
}

// fig6 sweeps codecs × {filter-only, all-operator} over Deep Water.
func fig6() error {
	header("Figure 6: compression × pushdown — deepwater")
	fmt.Println("Paper: within each codec all-op beats filter-only (1.22x-1.39x);")
	fmt.Println("compressed filter-only (zstd, 451.7s) beats uncompressed all-op (530.4s).")
	fmt.Printf("  %-8s %-12s %14s %14s %12s\n", "codec", "pushdown", "modeled time", "wall time", "moved")
	type key struct {
		codec compress.Codec
		mode  string
	}
	totals := map[key]time.Duration{}
	for _, codec := range compress.Codecs() {
		c, err := harness.StartCluster(*nodesFlag)
		if err != nil {
			return err
		}
		d, err := loadDataset(c, "deepwater", codec)
		if err != nil {
			c.Close()
			return err
		}
		for _, mode := range []string{"filter", "filter_project_agg"} {
			cell, err := c.RunFig6Cell(d, mode)
			if err != nil {
				c.Close()
				return err
			}
			label := "filter-only"
			if mode != "filter" {
				label = "all-op"
			}
			totals[key{codec, mode}] = cell.Modeled.Total
			fmt.Printf("  %-8s %-12s %14v %14v %12s\n",
				codec, label, cell.Modeled.Total.Round(time.Microsecond),
				cell.Wall.Round(time.Microsecond), byteCount(cell.BytesMoved))
		}
		c.Close()
	}
	for _, codec := range compress.Codecs() {
		f := totals[key{codec, "filter"}]
		a := totals[key{codec, "filter_project_agg"}]
		fmt.Printf("  => %s: all-op vs filter-only speedup %.2fx\n", codec, ratio(f, a))
	}
	return nil
}

// table3 breaks a single-object query into the paper's stages.
func table3() error {
	header("Table 3: execution-time breakdown, single query on one object")
	c, err := harness.StartCluster(1)
	if err != nil {
		return err
	}
	defer c.Close()
	d, err := workload.Laghos(cfg(1, 65536, compress.None))
	if err != nil {
		return err
	}
	if err := c.Load(d); err != nil {
		return err
	}
	b, err := c.RunTable3(d)
	if err != nil {
		return err
	}
	pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(b.Total) }
	fmt.Printf("  %-30s %12s %8s\n", "stage", "time", "share")
	fmt.Printf("  %-30s %12v %7.2f%%\n", "Logical plan analysis", b.PlanAnalysis.Round(time.Microsecond), pct(b.PlanAnalysis))
	fmt.Printf("  %-30s %12v %7.2f%%\n", "Substrait IR generation", b.SubstraitGen.Round(time.Microsecond), pct(b.SubstraitGen))
	fmt.Printf("  %-30s %12v %7.2f%%\n", "Pushdown & result transfer", b.Transfer.Round(time.Microsecond), pct(b.Transfer))
	fmt.Printf("  %-30s %12v %7.2f%%\n", "Engine execution (post-scan)", b.Residual.Round(time.Microsecond), pct(b.Residual))
	fmt.Printf("  %-30s %12v %7.2f%%\n", "Others", b.Other.Round(time.Microsecond), pct(b.Other))
	fmt.Printf("  %-30s %12v %7.2f%%\n", "Total", b.Total.Round(time.Microsecond), 100.0)
	fmt.Println("  (paper: 0.06% plan analysis, 1.94% IR generation, 40.1% pushdown+transfer, 47.9% Presto execution)")
	return nil
}
