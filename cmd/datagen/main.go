// Command datagen generates the evaluation datasets and loads them into a
// running ocsd (and optionally objstored) deployment, writing the catalog
// JSON that prestolite consumes.
//
//	datagen -dataset laghos|deepwater|tpch|orders|all -ocs <frontend-addr>
//	        [-objstore <addr>] [-files N] [-rows N] [-codec none|snappy|gzip|zstd]
//	        [-catalog catalog.json] [-seed 42]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"prestocs/internal/compress"
	"prestocs/internal/metastore"
	"prestocs/internal/objstore"
	"prestocs/internal/ocsserver"
	"prestocs/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "all", "laghos, deepwater, tpch, orders or all")
	ocsAddr := flag.String("ocs", "", "OCS frontend address (required)")
	objAddr := flag.String("objstore", "", "plain object store address (optional)")
	files := flag.Int("files", 0, "files per dataset (0 = dataset default)")
	rows := flag.Int("rows", 0, "rows per file (0 = dataset default)")
	codecName := flag.String("codec", "none", "column-chunk codec")
	catalogPath := flag.String("catalog", "catalog.json", "catalog output path")
	seed := flag.Int64("seed", 42, "generation seed")
	flag.Parse()

	if *ocsAddr == "" {
		log.Fatal("datagen: -ocs is required (run ocsd first)")
	}
	codec, err := compress.ParseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := workload.Config{Files: *files, RowsPerFile: *rows, Codec: codec, Seed: *seed}

	// "orders" shares the tpch scale/seed so orderkeys align 1:1 with
	// lineitem and the Q3-shaped join has matches.
	gens := map[string]func(workload.Config) (*workload.Dataset, error){
		"laghos":    workload.Laghos,
		"deepwater": workload.DeepWater,
		"tpch":      workload.TPCH,
		"orders":    workload.TPCHOrders,
	}
	names := []string{"laghos", "deepwater", "tpch", "orders"}
	if *dataset != "all" {
		if _, ok := gens[*dataset]; !ok {
			log.Fatalf("datagen: unknown dataset %q", *dataset)
		}
		names = []string{*dataset}
	}

	ocsCli := ocsserver.NewClient(*ocsAddr)
	defer ocsCli.Close()
	var objCli *objstore.Client
	if *objAddr != "" {
		objCli = objstore.NewClient(*objAddr)
		defer objCli.Close()
	}

	ms := metastore.New()
	for _, name := range names {
		d, err := gens[name](cfg)
		if err != nil {
			log.Fatalf("datagen: generating %s: %v", name, err)
		}
		if err := d.UploadOCS(context.Background(), ocsCli); err != nil {
			log.Fatalf("datagen: uploading %s to OCS: %v", name, err)
		}
		if err := d.Register(ms, "ocs"); err != nil {
			log.Fatal(err)
		}
		if objCli != nil {
			if err := d.UploadObjStore(context.Background(), objCli); err != nil {
				log.Fatalf("datagen: uploading %s to object store: %v", name, err)
			}
			if err := d.Register(ms, "hive"); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%s: %d objects, %d rows, %.1f MB stored (%s)\n",
			name, len(d.Table.Objects), d.Table.RowCount,
			float64(d.Table.TotalBytes)/1e6, codec)
	}
	if err := ms.Save(*catalogPath); err != nil {
		log.Fatalf("datagen: writing catalog: %v", err)
	}
	fmt.Printf("catalog written to %s\n", *catalogPath)
}
