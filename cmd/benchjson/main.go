// Command benchjson converts `go test -bench` output into a JSON array so
// benchmark runs can be archived and diffed (`make bench` pipes through it
// to produce BENCH_PR6.json). The raw text is echoed to stderr so the
// human-readable table is not lost.
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/exec/ | benchjson > BENCH.json
//	benchjson -compare [-threshold 20] [-metrics ns/op,small-p99-ms] OLD.json NEW.json
//
// Compare mode diffs two archives on the chosen metrics (default ns/op),
// prints a delta table per metric, reports benchmarks present in only one
// archive, and exits 1 when any benchmark regressed by more than
// -threshold percent on any compared metric. Benchmarks that do not report
// a requested metric are skipped for that metric, so custom units like the
// mixed-traffic small-p50-ms/small-p99-ms latencies can gate CI without
// dragging every other benchmark into the comparison.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark line. Metrics holds every reported unit keyed by
// its literal suffix ("ns/op", "B/op", "allocs/op", "MB/s", custom units).
type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	compare := flag.Bool("compare", false, "diff two benchjson archives instead of converting bench output")
	threshold := flag.Float64("threshold", 20, "regression percentage that fails compare mode")
	metrics := flag.String("metrics", "ns/op", "comma-separated metric keys to diff in compare mode")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two archives: OLD.json NEW.json")
			os.Exit(2)
		}
		var keys []string
		for _, m := range strings.Split(*metrics, ",") {
			if m = strings.TrimSpace(m); m != "" {
				keys = append(keys, m)
			}
		}
		if len(keys) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -metrics must name at least one metric")
			os.Exit(2)
		}
		os.Exit(compareArchives(flag.Arg(0), flag.Arg(1), *threshold, keys))
	}
	convert()
}

func convert() {
	var results []result
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{
			Name:       trimProcSuffix(fields[0]),
			Package:    pkg,
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// compareArchives diffs two archives on the given metrics and returns the
// process exit code: 0 when no benchmark regressed past threshold on any
// metric, 1 otherwise.
func compareArchives(oldPath, newPath string, threshold float64, metrics []string) int {
	oldRes, err := loadArchive(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRes, err := loadArchive(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}

	// Key by package/name so identically-named benchmarks in different
	// packages do not collide.
	key := func(r result) string { return r.Package + "/" + r.Name }
	oldBy := map[string]result{}
	for _, r := range oldRes {
		oldBy[key(r)] = r
	}
	newBy := map[string]result{}
	for _, r := range newRes {
		newBy[key(r)] = r
	}

	var names []string
	for k := range newBy {
		names = append(names, k)
	}
	sort.Strings(names)

	regressions := 0
	for _, metric := range metrics {
		fmt.Printf("%-64s %14s %14s %9s\n", "benchmark", "old "+metric, "new "+metric, "delta")
		for _, k := range names {
			nr := newBy[k]
			newVal, hasNew := nr.Metrics[metric]
			if !hasNew {
				continue
			}
			or, ok := oldBy[k]
			if !ok {
				fmt.Printf("%-64s %14s %14.1f %9s\n", nr.Name, "-", newVal, "new")
				continue
			}
			oldVal, hasOld := or.Metrics[metric]
			if !hasOld || oldVal == 0 {
				continue
			}
			delta := (newVal - oldVal) / oldVal * 100
			mark := ""
			if delta > threshold {
				mark = "  REGRESSION"
				regressions++
			}
			fmt.Printf("%-64s %14.1f %14.1f %+8.1f%%%s\n", nr.Name, oldVal, newVal, delta, mark)
		}
	}
	// Report disappeared benchmarks, but only those that carried one of
	// the compared metrics — a subset rerun (e.g. the MixedTraffic-only
	// bench-gate lane) should not list the whole old archive as removed.
	for k, or := range oldBy {
		if _, ok := newBy[k]; ok {
			continue
		}
		for _, metric := range metrics {
			if v, ok := or.Metrics[metric]; ok {
				fmt.Printf("%-64s %14.1f %14s %9s\n", or.Name, v, "-", "removed")
				break
			}
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%%\n", regressions, threshold)
		return 1
	}
	return 0
}

func loadArchive(path string) ([]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res []result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return res, nil
}

// trimProcSuffix strips the trailing -GOMAXPROCS from a benchmark name
// (BenchmarkFilter-8 -> BenchmarkFilter), leaving sub-benchmark paths
// intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
