// Command benchjson converts `go test -bench` output into a JSON array so
// benchmark runs can be archived and diffed (`make bench` pipes through it
// to produce BENCH_PR3.json). The raw text is echoed to stderr so the
// human-readable table is not lost.
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/exec/ | benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line. Metrics holds every reported unit keyed by
// its literal suffix ("ns/op", "B/op", "allocs/op", "MB/s", custom units).
type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var results []result
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{
			Name:       trimProcSuffix(fields[0]),
			Package:    pkg,
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// trimProcSuffix strips the trailing -GOMAXPROCS from a benchmark name
// (BenchmarkFilter-8 -> BenchmarkFilter), leaving sub-benchmark paths
// intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
