// Command objstored runs the plain S3/MinIO-like object store with its
// SelectObjectContent API — the conventional-storage baseline the Hive
// connector talks to.
//
//	objstored [-listen 127.0.0.1:9750]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"prestocs/internal/objstore"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9750", "listen address")
	flag.Parse()

	srv := objstore.NewServer(objstore.NewStore())
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("objstored: %v", err)
	}
	fmt.Printf("object store listening on %s\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}
