// Command objstored runs the plain S3/MinIO-like object store with its
// SelectObjectContent API — the conventional-storage baseline the Hive
// connector talks to.
//
//	objstored [-listen 127.0.0.1:9750] [-metrics-listen 127.0.0.1:9751]
//
// With -metrics-listen, a debug HTTP server exposes /metrics and
// /debug/traces for the store's RPC transport.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"prestocs/internal/objstore"
	"prestocs/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9750", "listen address")
	metricsListen := flag.String("metrics-listen", "", "debug HTTP address for /metrics and /debug/traces (empty = disabled)")
	flag.Parse()

	srv := objstore.NewServer(objstore.NewStore())
	var reg *telemetry.Registry
	tracers := map[string]*telemetry.Tracer{}
	if *metricsListen != "" {
		reg = telemetry.NewRegistry()
		srv.Metrics = reg
		srv.Tracer = telemetry.NewTracer(0)
		tracers["objstore"] = srv.Tracer
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("objstored: %v", err)
	}
	fmt.Printf("object store listening on %s\n", addr)
	if reg != nil {
		mAddr, stop, err := telemetry.Serve(*metricsListen, reg, tracers)
		if err != nil {
			log.Fatalf("objstored: metrics: %v", err)
		}
		defer stop()
		fmt.Printf("metrics on http://%s/metrics, traces on http://%s/debug/traces\n", mAddr, mAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	srv.Close()
}
