// Command prestolite is the SQL CLI: a single-process coordinator+worker
// engine wired to an OCS frontend (ocs catalog) and optionally a plain
// object store (hive catalog), using the catalog JSON datagen wrote.
//
//	prestolite -catalog catalog.json -ocs <frontend-addr> [-objstore <addr>]
//	           [-pushdown all|none|filter|...|auto] [-explain] "SELECT ..."
//
// Without a query argument it reads statements from stdin, one per line.
package main

import (
	"context"
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"prestocs/internal/connector/hive"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/metastore"
	"prestocs/internal/objstore"
	"prestocs/internal/ocsserver"
)

func main() {
	catalogPath := flag.String("catalog", "catalog.json", "catalog JSON written by datagen")
	ocsAddr := flag.String("ocs", "", "OCS frontend address (required)")
	objAddr := flag.String("objstore", "", "plain object store address (optional, enables hive catalog)")
	pushdown := flag.String("pushdown", "all", "ocs pushdown mode (none, filter, ..., all, auto)")
	explain := flag.Bool("explain", false, "print the optimized plan before results")
	flag.Parse()

	if *ocsAddr == "" {
		log.Fatal("prestolite: -ocs is required")
	}
	ms, err := metastore.Load(*catalogPath)
	if err != nil {
		log.Fatalf("prestolite: loading catalog: %v", err)
	}

	eng := engine.New()
	eng.DefaultCatalog = "ocs"
	ocsCli := ocsserver.NewClient(*ocsAddr)
	defer ocsCli.Close()
	conn := ocsconn.New("ocs", ms, ocsCli)
	eng.AddConnector(conn)
	eng.AddEventListener(conn.Monitor())
	if *objAddr != "" {
		objCli := objstore.NewClient(*objAddr)
		defer objCli.Close()
		eng.AddConnector(hive.New("hive", ms, objCli))
	}

	run := func(sql string) {
		sql = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
		if sql == "" {
			return
		}
		session := engine.NewSession().Set(ocsconn.SessionPushdown, *pushdown)
		start := time.Now()
		res, err := eng.Execute(context.Background(), sql, session)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		if *explain {
			fmt.Println(res.Stats.PlanText)
		}
		printResult(res)
		scan := res.Stats.Scan.Snapshot()
		fmt.Printf("-- %d rows in %v; pushed=%v; moved=%d bytes over %d splits\n",
			res.Page.NumRows(), time.Since(start).Round(time.Millisecond),
			res.Stats.PushedDown, scan.BytesMoved, res.Stats.Splits)
	}

	if flag.NArg() > 0 {
		run(strings.Join(flag.Args(), " "))
		return
	}
	fmt.Println("prestolite: enter SQL, one statement per line (ctrl-D to exit)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("sql> ")
		if !scanner.Scan() {
			break
		}
		run(scanner.Text())
	}
}

func printResult(res *engine.Result) {
	names := res.Schema.Names()
	fmt.Println(strings.Join(names, " | "))
	n := res.Page.NumRows()
	const maxRows = 100
	for i := 0; i < n && i < maxRows; i++ {
		row := res.Page.Row(i)
		parts := make([]string, len(row))
		for c, v := range row {
			parts[c] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if n > maxRows {
		fmt.Printf("... (%d more rows)\n", n-maxRows)
	}
}
