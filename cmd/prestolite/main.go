// Command prestolite is the SQL CLI: a single-process coordinator+worker
// engine wired to an OCS frontend (ocs catalog) and optionally a plain
// object store (hive catalog), using the catalog JSON datagen wrote.
//
//	prestolite -catalog catalog.json -ocs <frontend-addr> [-objstore <addr>]
//	           [-pushdown always|never|filter|...|auto] [-explain] [-profile]
//	           [-meta-cache-tables 1024] [-metrics-listen :9280]
//	           [-max-queries N] [-queue N] [-memory-budget BYTES]
//	           [-ingest [-ingest-flush-rows N] [-compact-interval 30s]]
//	           "SELECT ..."
//
// -ingest enables the write path: INSERT INTO ... VALUES statements
// buffer rows through the ingest package into parquetlite objects with
// fresh zone maps, committed to the metastore (and persisted back to the
// catalog JSON) before the statement returns. -compact-interval starts a
// background compactor that merges small objects and re-sorts them by
// the clustering key; in-flight queries keep their pinned snapshot.
//
// Without a query argument it reads statements from stdin, one per line.
// -profile prints an EXPLAIN ANALYZE-style per-query trace after each
// statement: the engine-side span tree with stage timings (plan analysis,
// Substrait generation, stream open, transfer wait, Arrow deserialize)
// plus retry and fallback events.
//
// -metrics-listen serves /metrics, /debug/traces and /debug/queries (the
// live process list). Two client modes act on a running prestolite's
// debug port and exit:
//
//	prestolite -queries host:port        # list live + recent queries
//	prestolite -kill q-3 -debug host:port
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"prestocs/internal/cache"
	"prestocs/internal/connector/hive"
	ocsconn "prestocs/internal/connector/ocs"
	"prestocs/internal/engine"
	"prestocs/internal/ingest"
	"prestocs/internal/metastore"
	"prestocs/internal/objstore"
	"prestocs/internal/ocsserver"
	"prestocs/internal/telemetry"
)

func main() {
	catalogPath := flag.String("catalog", "catalog.json", "catalog JSON written by datagen")
	ocsAddr := flag.String("ocs", "", "OCS frontend address (required)")
	objAddr := flag.String("objstore", "", "plain object store address (optional, enables hive catalog)")
	pushdown := flag.String("pushdown", "all", "ocs pushdown mode: always/all, never/none, filter, ..., or auto (per-split adaptive: selectivity history + storage-load feedback decide pushdown vs raw per split)")
	explain := flag.Bool("explain", false, "print the optimized plan before results")
	profile := flag.Bool("profile", false, "print a per-query trace profile after each statement")
	metaCacheTables := flag.Int("meta-cache-tables", cache.DefaultTableCacheEntries, "table-metadata cache entries per catalog (0 disables)")
	metricsListen := flag.String("metrics-listen", "", "serve /metrics, /debug/traces and /debug/queries on this address")
	ingestMode := flag.Bool("ingest", false, "enable the write path: INSERT statements buffer rows into parquetlite objects on the ocs catalog")
	flushRows := flag.Int("ingest-flush-rows", 0, "ingest: rows buffered per table before an object is sealed (0 = default)")
	compactEvery := flag.Duration("compact-interval", 0, "ingest: background compaction interval over ocs tables (0 disables)")
	maxQueries := flag.Int("max-queries", 0, "admission: max concurrently executing queries (0 = unlimited)")
	maxQueued := flag.Int("queue", 0, "admission: max queries queued once saturated (0 = shed immediately)")
	memBudget := flag.Int64("memory-budget", 0, "admission: total query-memory budget in bytes (0 = unlimited)")
	queriesAt := flag.String("queries", "", "client mode: list queries at a running prestolite's debug address and exit")
	killID := flag.String("kill", "", "client mode: kill the given query id at -debug and exit")
	debugAddr := flag.String("debug", "localhost:9280", "debug address -kill targets")
	flag.Parse()

	if *queriesAt != "" {
		debugGet(*queriesAt)
		return
	}
	if *killID != "" {
		debugKill(*debugAddr, *killID)
		return
	}
	if *ocsAddr == "" {
		log.Fatal("prestolite: -ocs is required")
	}
	ms, err := metastore.Load(*catalogPath)
	if err != nil {
		log.Fatalf("prestolite: loading catalog: %v", err)
	}

	eng := engine.New()
	eng.DefaultCatalog = "ocs"
	eng.SetAdmission(engine.AdmissionConfig{
		MaxConcurrent: *maxQueries,
		MaxQueued:     *maxQueued,
		MemoryBudget:  *memBudget,
	})
	var ocsOpts []ocsserver.Option
	if *profile || *metricsListen != "" {
		eng.Tracer = telemetry.NewTracer(0)
		eng.Metrics = telemetry.NewRegistry()
		ocsOpts = append(ocsOpts, ocsserver.WithMetrics(eng.Metrics))
	}
	ocsCli := ocsserver.NewClient(*ocsAddr, ocsOpts...)
	defer ocsCli.Close()
	conn := ocsconn.New("ocs", ms, ocsCli)
	conn.SetTableCacheEntries(*metaCacheTables)
	eng.AddConnector(conn)
	eng.AddEventListener(conn.Monitor())
	if *profile || *metricsListen != "" {
		conn.Monitor().SetMetrics(eng.Metrics)
		conn.SetMetrics(eng.Metrics)
	}
	if *ingestMode {
		ing := ingest.NewIngester(ms, ocsCli, ingest.Options{
			FlushRows: *flushRows,
			Telemetry: eng.Metrics,
		})
		conn.AttachIngester(ing)
		// Persist catalog changes (new objects, compactions) on exit so a
		// restarted prestolite sees the ingested data.
		defer func() {
			if err := ms.Save(*catalogPath); err != nil {
				fmt.Fprintf(os.Stderr, "prestolite: saving catalog: %v\n", err)
			}
		}()
		if *compactEvery > 0 {
			comp := ingest.NewCompactor(ms, ocsCli, ingest.CompactorOptions{Telemetry: eng.Metrics})
			for _, qn := range ms.List() {
				schema, name, ok := strings.Cut(qn, ".")
				if !ok || schema != "ocs" {
					continue
				}
				comp.Start(context.Background(), schema, name, *compactEvery)
			}
			defer comp.Stop()
		}
	}
	if *objAddr != "" {
		objCli := objstore.NewClient(*objAddr)
		defer objCli.Close()
		hiveConn := hive.New("hive", ms, objCli)
		hiveConn.SetTableCacheEntries(*metaCacheTables)
		if *profile || *metricsListen != "" {
			hiveConn.SetMetrics(eng.Metrics)
		}
		eng.AddConnector(hiveConn)
	}
	if *metricsListen != "" {
		tracers := map[string]*telemetry.Tracer{"engine": eng.Tracer}
		bound, stop, err := telemetry.Serve(*metricsListen, eng.Metrics, tracers,
			telemetry.Endpoint{Pattern: "/debug/queries", Handler: eng.Processes()})
		if err != nil {
			log.Fatalf("prestolite: -metrics-listen: %v", err)
		}
		defer stop()
		fmt.Fprintf(os.Stderr, "prestolite: debug endpoints on http://%s (/metrics /debug/traces /debug/queries)\n", bound)
	}

	run := func(sql string) {
		sql = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
		if sql == "" {
			return
		}
		if word := strings.ToUpper(strings.Fields(sql)[0]); word == "INSERT" {
			res, err := eng.Ingest(context.Background(), sql)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
				return
			}
			fmt.Printf("-- inserted %d rows into %s.%s in %v (queryable)\n",
				res.Rows, res.Catalog, res.Table, res.Duration.Round(time.Millisecond))
			if err := ms.Save(*catalogPath); err != nil {
				fmt.Fprintf(os.Stderr, "prestolite: saving catalog: %v\n", err)
			}
			return
		}
		session := engine.NewSession().Set(ocsconn.SessionPushdown, *pushdown)
		start := time.Now()
		q, err := eng.Submit(context.Background(), sql, engine.WithSession(session))
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		res, err := q.Result()
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		if *explain {
			fmt.Println(res.Stats.PlanText)
		}
		printResult(res)
		scan := res.Stats.Scan.Snapshot()
		fmt.Printf("-- %d rows in %v; pushed=%v; moved=%d bytes over %d splits\n",
			res.Page.NumRows(), time.Since(start).Round(time.Millisecond),
			res.Stats.PushedDown, scan.BytesMoved, res.Stats.Splits)
		if *profile && res.Stats.TraceID != 0 {
			telemetry.RenderTrace(os.Stdout, eng.Tracer.TraceSpans(res.Stats.TraceID))
		}
	}

	if flag.NArg() > 0 {
		run(strings.Join(flag.Args(), " "))
		return
	}
	fmt.Println("prestolite: enter SQL, one statement per line (ctrl-D to exit)")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("sql> ")
		if !scanner.Scan() {
			break
		}
		run(scanner.Text())
	}
}

// debugGet prints a running prestolite's /debug/queries text listing.
func debugGet(addr string) {
	resp, err := http.Get("http://" + addr + "/debug/queries")
	if err != nil {
		log.Fatalf("prestolite: -queries: %v", err)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
}

// debugKill asks a running prestolite to cancel one query.
func debugKill(addr, id string) {
	resp, err := http.Post("http://"+addr+"/debug/queries?kill="+id, "", nil)
	if err != nil {
		log.Fatalf("prestolite: -kill: %v", err)
	}
	defer resp.Body.Close()
	io.Copy(os.Stdout, resp.Body)
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}

func printResult(res *engine.Result) {
	names := res.Schema.Names()
	fmt.Println(strings.Join(names, " | "))
	n := res.Page.NumRows()
	const maxRows = 100
	for i := 0; i < n && i < maxRows; i++ {
		row := res.Page.Row(i)
		parts := make([]string, len(row))
		for c, v := range row {
			parts[c] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if n > maxRows {
		fmt.Printf("... (%d more rows)\n", n-maxRows)
	}
}
