// Command ocsd runs an OCS deployment: N storage nodes plus the frontend
// that applications (and the Presto-OCS connector) talk to.
//
//	ocsd [-listen 127.0.0.1:7app] [-nodes 1] [-node-listen 127.0.0.1:0]
//
// The frontend address is printed on startup; pass it to prestolite via
// -ocs, or to examples via OCS_ADDR. ocsd runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"prestocs/internal/ocsserver"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9740", "frontend listen address")
	nodes := flag.Int("nodes", 1, "storage node count")
	nodeListen := flag.String("node-listen", "127.0.0.1:0", "storage node listen address pattern (port 0 = ephemeral)")
	flag.Parse()

	if *nodes <= 0 {
		log.Fatal("ocsd: -nodes must be positive")
	}
	var nodeAddrs []string
	var storageNodes []*ocsserver.StorageNode
	for i := 0; i < *nodes; i++ {
		node := ocsserver.NewStorageNode(i)
		addr, err := node.Listen(*nodeListen)
		if err != nil {
			log.Fatalf("ocsd: storage node %d: %v", i, err)
		}
		fmt.Printf("storage node %d listening on %s\n", i, addr)
		nodeAddrs = append(nodeAddrs, addr)
		storageNodes = append(storageNodes, node)
	}
	frontend, err := ocsserver.NewFrontend(nodeAddrs)
	if err != nil {
		log.Fatalf("ocsd: frontend: %v", err)
	}
	addr, err := frontend.Listen(*listen)
	if err != nil {
		log.Fatalf("ocsd: frontend: %v", err)
	}
	fmt.Printf("OCS frontend listening on %s (%d storage nodes)\n", addr, *nodes)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	frontend.Close()
	for _, n := range storageNodes {
		n.Close()
	}
}
