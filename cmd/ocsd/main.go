// Command ocsd runs an OCS deployment: N storage nodes plus the frontend
// that applications (and the Presto-OCS connector) talk to.
//
//	ocsd [-listen 127.0.0.1:7app] [-nodes 1] [-node-listen 127.0.0.1:0]
//	     [-metrics-listen 127.0.0.1:9741]
//	     [-footer-cache-bytes 8388608] [-page-cache-bytes 67108864]
//	     [-scan-pool 0] [-stream-window 8]
//
// The frontend address is printed on startup; pass it to prestolite via
// -ocs, or to examples via OCS_ADDR. With -metrics-listen, a debug HTTP
// server exposes /metrics (every component counts into one registry) and
// /debug/traces (spans merged across the frontend and all nodes, so each
// query shows as one connected trace). ocsd runs until interrupted.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"prestocs/internal/cache"
	"prestocs/internal/ocsserver"
	"prestocs/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9740", "frontend listen address")
	nodes := flag.Int("nodes", 1, "storage node count")
	nodeListen := flag.String("node-listen", "127.0.0.1:0", "storage node listen address pattern (port 0 = ephemeral)")
	metricsListen := flag.String("metrics-listen", "", "debug HTTP address for /metrics and /debug/traces (empty = disabled)")
	footerCacheBytes := flag.Int64("footer-cache-bytes", cache.DefaultFooterCacheBytes, "per-node decoded-footer cache budget (0 disables)")
	pageCacheBytes := flag.Int64("page-cache-bytes", cache.DefaultPageCacheBytes, "per-node hot-page cache budget (0 disables)")
	scanPool := flag.Int("scan-pool", 0, "per-node scan-scheduler workers (0 = storage-node core count)")
	streamWindow := flag.Int("stream-window", 0, "per-stream credit window in chunks (0 = default, negative disables backpressure)")
	flag.Parse()

	if *nodes <= 0 {
		log.Fatal("ocsd: -nodes must be positive")
	}
	var reg *telemetry.Registry
	tracers := map[string]*telemetry.Tracer{}
	if *metricsListen != "" {
		reg = telemetry.NewRegistry()
	}
	var nodeAddrs []string
	var storageNodes []*ocsserver.StorageNode
	for i := 0; i < *nodes; i++ {
		node := ocsserver.NewStorageNode(i)
		node.Caches = cache.NewStorage(*footerCacheBytes, *pageCacheBytes)
		node.ScanPool = *scanPool
		node.StreamWindow = *streamWindow
		if reg != nil {
			node.Metrics = reg
			node.Tracer = telemetry.NewTracer(0)
			tracers[fmt.Sprintf("node%d", i)] = node.Tracer
		}
		addr, err := node.Listen(*nodeListen)
		if err != nil {
			log.Fatalf("ocsd: storage node %d: %v", i, err)
		}
		fmt.Printf("storage node %d listening on %s\n", i, addr)
		nodeAddrs = append(nodeAddrs, addr)
		storageNodes = append(storageNodes, node)
	}
	frontend, err := ocsserver.NewFrontend(nodeAddrs)
	if err != nil {
		log.Fatalf("ocsd: frontend: %v", err)
	}
	frontend.StreamWindow = *streamWindow
	if reg != nil {
		frontend.Metrics = reg
		frontend.Tracer = telemetry.NewTracer(0)
		tracers["frontend"] = frontend.Tracer
	}
	addr, err := frontend.Listen(*listen)
	if err != nil {
		log.Fatalf("ocsd: frontend: %v", err)
	}
	fmt.Printf("OCS frontend listening on %s (%d storage nodes)\n", addr, *nodes)
	if reg != nil {
		mAddr, stop, err := telemetry.Serve(*metricsListen, reg, tracers)
		if err != nil {
			log.Fatalf("ocsd: metrics: %v", err)
		}
		defer stop()
		fmt.Printf("metrics on http://%s/metrics, traces on http://%s/debug/traces\n", mAddr, mAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	frontend.Close()
	for _, n := range storageNodes {
		n.Close()
	}
}
